//! Chunked pipeline protocols and the node-proxy engine.
//!
//! These implement the large-message designs of paper §III-C:
//! **Pipeline GDR write** (D2H staging chunks + GDR RDMA writes, truly
//! one-sided), the **proxy-based** protocols (a node-level agent moves
//! data via IPC + RDMA on behalf of PEs, keeping the *target* PE out of
//! the loop), and the baseline **host-based pipeline** [15] whose final
//! copy needs the target process.

use crate::machine::{OpToken, ShmemMachine};
use crate::state::{Delivery, GetRequest, PendingWork};
use ib_sim::RdmaCompletion;
use pcie_sim::mem::MemRef;
use pcie_sim::ProcId;
use sim_core::{Completion, SimDuration, TaskCtx};
use std::sync::atomic::Ordering;
use std::sync::Arc;

impl ShmemMachine {
    /// Allocate from `pe`'s staging area, blocking (with virtual-time
    /// polling) until in-flight chunks free space — credit-based flow
    /// control. Panics if the request can never fit.
    pub(crate) fn alloc_staging_blocking(self: &Arc<Self>, ctx: &TaskCtx, pe: ProcId, len: u64) -> u64 {
        let cap = self.cfg().staging;
        assert!(
            len <= cap,
            "staging request of {len} bytes exceeds the {cap}-byte staging area; \
             raise RuntimeConfig::staging"
        );
        let mut waited = SimDuration::ZERO;
        loop {
            if let Ok(off) = self.pe_state(pe).staging_alloc.lock().alloc(len) {
                return off;
            }
            let step = SimDuration::from_us(1);
            ctx.advance(step);
            waited += step;
            assert!(
                waited < SimDuration::from_ms(500),
                "staging area of {pe} stayed full for 500ms of virtual time — \
                 a flow-control stall (in-flight chunks are not freeing); \
                 raise RuntimeConfig::staging if the workload is legitimate"
            );
        }
    }

    /// Latency of the modelled software ack path (target → source, small
    /// control message over the wire).
    pub(crate) fn ack_latency(&self) -> SimDuration {
        let ib = &self.cluster().hw().ib;
        ib.post_overhead + ib.hca_wqe + ib.wire_latency + ib.switch_latency + ib.cq_delivery
    }

    /// Latency for a proxy-request signal to reach and wake the remote
    /// proxy (paper Fig. 5: source passes a signal to the remote proxy).
    pub(crate) fn proxy_signal_latency(&self) -> SimDuration {
        let ib = &self.cluster().hw().ib;
        ib.post_overhead + ib.hca_wqe + ib.wire_latency + ib.switch_latency + ib.remote_hca
            + SimDuration::from_ns(500)
    }

    /// **Pipeline GDR write** (Enhanced-GDR large put with device source):
    /// chunked D2H copies into the registered staging area, each chunk
    /// RDMA-written (GDR when the destination is a GPU) as soon as it is
    /// staged. Returns when the last D2H copy completes — the paper's
    /// definition of local completion for this protocol. Remote
    /// completions are tracked for `quiet`. No target involvement.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn pipeline_gdr_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        src: MemRef,
        dst: MemRef,
        dst_domain: crate::addr::Domain,
        len: u64,
        target: ProcId,
        token: OpToken,
    ) {
        let chunk = self.cfg().pipeline_chunk;
        let rkey = self.layout().rkey(dst_domain, target);
        let n = len.div_ceil(chunk);
        let rec = self.obs().clone();
        let track = self.pe_track(me);
        // chunk spans follow the op's sampling verdict
        let trace = rec.spans_on() && token.sampled;
        let mut last_d2h: Option<Completion> = None;
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            let stg_off = self.alloc_staging_blocking(ctx, me, clen);
            let stg = self.layout().staging_base(me).add(stg_off);
            let t_stage = ctx.now();
            let d2h = self.gpus().memcpy_async(ctx, src.add(off), stg, clen);
            let comp = RdmaCompletion::new();
            let dst_c = dst.add(off);
            let mach = self.clone();
            let comp2 = comp.clone();
            let rec2 = rec.clone();
            ctx.with_sched(|s| {
                s.call_on(
                    &d2h,
                    1,
                    Box::new(move |s| {
                        let t_rdma = s.now();
                        if trace {
                            rec2.span(
                                track,
                                "chunk-d2h",
                                t_stage,
                                t_rdma,
                                obs::Payload::Chunk {
                                    protocol: "pipeline-gdr-write",
                                    stage: "d2h",
                                    index: i as u32,
                                    size: clen,
                                    op_id: token.id,
                                },
                            );
                        }
                        mach.ib()
                            .rdma_write_start(s, me, stg, rkey, dst_c, clen, &comp2)
                            .expect("pipeline chunk rdma");
                        if trace {
                            let rec3 = rec2.clone();
                            let remote = comp2.remote.clone();
                            s.call_on(
                                &remote,
                                1,
                                Box::new(move |s| {
                                    rec3.span(
                                        track,
                                        "chunk-rdma",
                                        t_rdma,
                                        s.now(),
                                        obs::Payload::Chunk {
                                            protocol: "pipeline-gdr-write",
                                            stage: "rdma",
                                            index: i as u32,
                                            size: clen,
                                            op_id: token.id,
                                        },
                                    );
                                }),
                            );
                        }
                    }),
                );
            });
            let mach = self.clone();
            ctx.with_sched(|s| {
                s.call_on(
                    &comp.local,
                    1,
                    Box::new(move |_| {
                        mach.pe_state(me).staging_alloc.lock().free(stg_off, clen);
                    }),
                );
            });
            if i == n - 1 {
                // last chunk's remote completion = the whole put delivered
                self.flow_end_on(ctx, &comp.remote, 1, self.pe_track(target), token);
            }
            self.pe_state(me).track(comp.remote.clone());
            last_d2h = Some(d2h);
        }
        if let Some(c) = last_d2h {
            ctx.wait(&c);
        }
    }

    /// The baseline **host-based pipeline put** [15] (inter-node D-D):
    /// D2H staging chunks, RDMA into the *target's* staging, and the
    /// final H2D copy performed by the target process when it enters the
    /// library. The source tracks per-chunk acks; `quiet` therefore
    /// blocks until the target has progressed — the one-sidedness
    /// violation the paper measures in Fig. 10.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn host_pipeline_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        src: MemRef,
        dst: MemRef,
        len: u64,
        target: ProcId,
        token: OpToken,
    ) {
        let chunk = self.cfg().pipeline_chunk;
        let host_rkey = self.layout().host_rkey(target);
        let n = len.div_ceil(chunk);
        // The baseline is rendezvous-based: an RTS/CTS handshake with the
        // target's runtime precedes the pipeline (cf. [17]).
        ctx.advance(self.ack_latency() * 2);
        let mut last_d2h: Option<Completion> = None;
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            let stg_off = self.alloc_staging_blocking(ctx, me, clen);
            let stg = self.layout().staging_base(me).add(stg_off);
            let t_off = self.alloc_staging_blocking(ctx, target, clen);
            let t_stg = self.layout().staging_base(target).add(t_off);
            // Small/medium messages use synchronous cudaMemcpy staging
            // (each chunk pays the full driver overhead — most of the
            // 20.9us of paper Table II); large transfers pipeline with
            // async copies like the real MVAPICH2-X implementation, so
            // both designs converge to staging bandwidth (paper Fig 8b).
            let d2h = if clen >= 256 << 10 {
                self.gpus().memcpy_async(ctx, src.add(off), stg, clen)
            } else {
                self.gpus().memcpy_sync(ctx, src.add(off), stg, clen);
                let c = Completion::new();
                ctx.with_sched(|s| s.signal(&c, 1));
                c
            };
            let comp = RdmaCompletion::new();
            let ack = Completion::new();
            let dst_c = dst.add(off);
            // once the chunk is staged: RDMA it into the target staging
            let mach = self.clone();
            let comp_c = comp.clone();
            ctx.with_sched(|s| {
                s.call_on(
                    &d2h,
                    1,
                    Box::new(move |s| {
                        mach.ib()
                            .rdma_write_start(s, me, stg, host_rkey, t_stg, clen, &comp_c)
                            .expect("host-pipeline chunk rdma");
                    }),
                );
            });
            // free my staging when the HCA has read it
            let mach = self.clone();
            ctx.with_sched(|s| {
                s.call_on(
                    &comp.local,
                    1,
                    Box::new(move |_| {
                        mach.pe_state(me).staging_alloc.lock().free(stg_off, clen);
                    }),
                );
            });
            // when the payload lands in target staging, hand the final
            // H2D to the target's progress engine
            let mach = self.clone();
            let ack2 = ack.clone();
            ctx.with_sched(|s| {
                s.call_on(
                    &comp.remote,
                    1,
                    Box::new(move |s| {
                        mach.arrive_pending(
                            s,
                            target,
                            PendingWork::Deliver(Delivery {
                                staged: t_stg,
                                dst: dst_c,
                                len: clen,
                                ack: ack2,
                                staging_off: t_off,
                            }),
                        );
                    }),
                );
            });
            if i == n - 1 {
                // the op is fully delivered once the target has H2D-copied
                // (and acked) the final chunk
                self.flow_end_on(ctx, &ack, 1, self.pe_track(target), token);
            }
            self.pe_state(me).track(ack);
            last_d2h = Some(d2h);
        }
        if let Some(c) = last_d2h {
            ctx.wait(&c);
        }
    }

    /// **Proxy-assisted put** (Enhanced-GDR, inter-socket destination):
    /// chunks are staged into the *target's* host staging via plain host
    /// RDMA; the remote **proxy** (not the target PE) performs the final
    /// H2D copies. One-sided: quiet waits on proxy copies, which run as
    /// hardware events regardless of what the target PE is doing.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn proxy_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        src: MemRef,
        dst: MemRef,
        len: u64,
        target: ProcId,
        token: OpToken,
    ) {
        let chunk = self.cfg().pipeline_chunk;
        let host_rkey = self.layout().host_rkey(target);
        let n = len.div_ceil(chunk);
        let src_dev = src.is_device();
        let node = self.cluster().topo().node_of(target);
        // a stalled proxy agent (fault plan) services requests late
        let signal = self.proxy_signal_latency() + self.proxy_stall_extra(node, ctx.now());
        self.proxy(node).puts_served.fetch_add(1, Ordering::Relaxed);
        self.proxy(node).bytes.fetch_add(len, Ordering::Relaxed);
        let rec = self.obs().clone();
        let ptrack = self.proxy_track(node);
        let trace = rec.spans_on() && token.sampled;
        if trace {
            rec.instant(
                ptrack,
                "proxy-request",
                ctx.now(),
                obs::Payload::Proxy {
                    kind: "put",
                    size: len,
                    origin_pe: me.0,
                },
            );
        }
        let mut last_local: Option<Completion> = None;
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            let t_off = self.alloc_staging_blocking(ctx, target, clen);
            let t_stg = self.layout().staging_base(target).add(t_off);
            let dst_c = dst.add(off);
            let comp = RdmaCompletion::new();
            let proxy_done = Completion::new();

            if src_dev {
                // stage through my host first (chunked D2H), then RDMA
                let stg_off = self.alloc_staging_blocking(ctx, me, clen);
                let stg = self.layout().staging_base(me).add(stg_off);
                let d2h = self.gpus().memcpy_async(ctx, src.add(off), stg, clen);
                let mach = self.clone();
                let comp2 = comp.clone();
                ctx.with_sched(|s| {
                    s.call_on(
                        &d2h,
                        1,
                        Box::new(move |s| {
                            mach.ib()
                                .rdma_write_start(s, me, stg, host_rkey, t_stg, clen, &comp2)
                                .expect("proxy-put chunk rdma");
                        }),
                    );
                });
                let mach = self.clone();
                ctx.with_sched(|s| {
                    s.call_on(
                        &comp.local,
                        1,
                        Box::new(move |_| {
                            mach.pe_state(me).staging_alloc.lock().free(stg_off, clen);
                        }),
                    );
                });
                last_local = Some(d2h);
            } else {
                self.ensure_registered(ctx, me, src.add(off), clen);
                ctx.with_sched(|s| {
                    self.ib()
                        .rdma_write_start(s, me, src.add(off), host_rkey, t_stg, clen, &comp)
                        .expect("proxy-put chunk rdma");
                });
                last_local = Some(comp.local.clone());
            }

            // when the chunk lands in target staging: the remote proxy
            // wakes (signal latency) and performs the H2D
            let mach = self.clone();
            let pd = proxy_done.clone();
            let rec2 = rec.clone();
            ctx.with_sched(|s| {
                s.call_on(
                    &comp.remote,
                    1,
                    Box::new(move |s| {
                        let t_arrive = s.now();
                        let mach2 = mach.clone();
                        let pd2 = pd.clone();
                        s.schedule_in(
                            signal,
                            Box::new(move |s| {
                                let t_h2d = s.now();
                                if trace {
                                    rec2.span(
                                        ptrack,
                                        "chunk-wakeup",
                                        t_arrive,
                                        t_h2d,
                                        obs::Payload::Chunk {
                                            protocol: "proxy-pipeline",
                                            stage: "wakeup",
                                            index: i as u32,
                                            size: clen,
                                            op_id: token.id,
                                        },
                                    );
                                }
                                let h2d = Completion::new();
                                mach2.gpus().dma_start(s, t_stg, dst_c, clen, &h2d);
                                let mach3 = mach2.clone();
                                s.call_on(
                                    &h2d,
                                    1,
                                    Box::new(move |s| {
                                        if trace {
                                            rec2.span(
                                                ptrack,
                                                "chunk-h2d",
                                                t_h2d,
                                                s.now(),
                                                obs::Payload::Chunk {
                                                    protocol: "proxy-pipeline",
                                                    stage: "h2d",
                                                    index: i as u32,
                                                    size: clen,
                                                    op_id: token.id,
                                                },
                                            );
                                        }
                                        mach3
                                            .pe_state(target)
                                            .staging_alloc
                                            .lock()
                                            .free(t_off, clen);
                                        s.signal(&pd2, 1);
                                    }),
                                );
                            }),
                        );
                    }),
                );
            });
            if i == n - 1 {
                // delivered once the proxy finishes the final H2D copy
                self.flow_end_on(ctx, &proxy_done, 1, self.pe_track(target), token);
            }
            self.pe_state(me).track(proxy_done);
        }
        if let Some(c) = last_local {
            ctx.wait(&c);
        }
    }

    /// **Proxy-based get** (Enhanced-GDR, large get from remote GPU):
    /// the remote node's proxy IPC-copies chunks from the target GPU to
    /// its registered host staging and RDMA-writes them (GDR when the
    /// local destination is a GPU) straight into the requester's buffer.
    /// The target *PE* does nothing; the (blocking) requester waits.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn proxy_get(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        src: MemRef,
        len: u64,
        from: ProcId,
        token: OpToken,
    ) {
        let chunk = self.cfg().pipeline_chunk;
        let n = len.div_ceil(chunk);
        // the proxy writes into our buffer: make sure it is registered
        // and obtain its rkey
        self.ensure_registered(ctx, me, dst, len);
        let dst_mr = self
            .ib()
            .mrs()
            .check_local(me, dst, len)
            .expect("just registered");
        let node = self.cluster().topo().node_of(from);
        // a stalled proxy agent (fault plan) services requests late
        let signal = self.proxy_signal_latency() + self.proxy_stall_extra(node, ctx.now());
        self.proxy(node).gets_served.fetch_add(1, Ordering::Relaxed);
        self.proxy(node).bytes.fetch_add(len, Ordering::Relaxed);
        let rec = self.obs().clone();
        let ptrack = self.proxy_track(node);
        let trace = rec.spans_on() && token.sampled;
        if trace {
            rec.instant(
                ptrack,
                "proxy-request",
                ctx.now(),
                obs::Payload::Proxy {
                    kind: "get",
                    size: len,
                    origin_pe: me.0,
                },
            );
        }
        let done = Completion::new();
        ctx.advance(self.cluster().hw().ib.post_overhead);
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            // credit-based reservation of the remote staging
            let t_off = self.alloc_staging_blocking(ctx, from, clen);
            let t_stg = self.layout().staging_base(from).add(t_off);
            let src_c = src.add(off);
            let dst_c = dst.add(off);
            let mach = self.clone();
            let done2 = done.clone();
            let rkey = dst_mr.rkey;
            let rec2 = rec.clone();
            let t_req = ctx.now();
            ctx.with_sched(|s| {
                s.schedule_in(
                    signal,
                    Box::new(move |s| {
                        // proxy: D2H from the target GPU into its staging
                        let t_wake = s.now();
                        if trace {
                            rec2.span(
                                ptrack,
                                "chunk-wakeup",
                                t_req,
                                t_wake,
                                obs::Payload::Chunk {
                                    protocol: "proxy-pipeline",
                                    stage: "wakeup",
                                    index: i as u32,
                                    size: clen,
                                    op_id: token.id,
                                },
                            );
                        }
                        let d2h = Completion::new();
                        mach.gpus().dma_start(s, src_c, t_stg, clen, &d2h);
                        let mach2 = mach.clone();
                        s.call_on(
                            &d2h,
                            1,
                            Box::new(move |s| {
                                let t_rdma = s.now();
                                if trace {
                                    rec2.span(
                                        ptrack,
                                        "chunk-d2h",
                                        t_wake,
                                        t_rdma,
                                        obs::Payload::Chunk {
                                            protocol: "proxy-pipeline",
                                            stage: "d2h",
                                            index: i as u32,
                                            size: clen,
                                            op_id: token.id,
                                        },
                                    );
                                }
                                let comp = RdmaCompletion::new();
                                mach2
                                    .ib()
                                    .rdma_write_start(s, from, t_stg, rkey, dst_c, clen, &comp)
                                    .expect("proxy-get chunk rdma");
                                let mach3 = mach2.clone();
                                let done3 = done2.clone();
                                s.call_on(
                                    &comp.local,
                                    1,
                                    Box::new(move |_| {
                                        mach3
                                            .pe_state(from)
                                            .staging_alloc
                                            .lock()
                                            .free(t_off, clen);
                                    }),
                                );
                                let remote = comp.remote.clone();
                                s.call_on(
                                    &remote,
                                    1,
                                    Box::new(move |s| {
                                        if trace {
                                            rec2.span(
                                                ptrack,
                                                "chunk-rdma",
                                                t_rdma,
                                                s.now(),
                                                obs::Payload::Chunk {
                                                    protocol: "proxy-pipeline",
                                                    stage: "rdma",
                                                    index: i as u32,
                                                    size: clen,
                                                    op_id: token.id,
                                                },
                                            );
                                        }
                                        s.signal(&done3, 1);
                                    }),
                                );
                            }),
                        );
                    }),
                );
            });
        }
        ctx.wait_threshold(&done, n);
    }

    /// Ablation fallback: chunked direct GDR reads (proxy disabled) —
    /// pays the PCIe P2P read cap on every chunk.
    pub(crate) fn chunked_direct_get(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        rkey: ib_sim::Rkey,
        src: MemRef,
        len: u64,
    ) {
        let chunk = self.cfg().pipeline_chunk;
        self.ensure_registered(ctx, me, dst, len);
        let n = len.div_ceil(chunk);
        let mut dones = Vec::with_capacity(n as usize);
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            let d = self
                .ib()
                .post_rdma_read(ctx, me, dst.add(off), rkey, src.add(off), clen)
                .expect("chunked direct get");
            dones.push(d);
        }
        for d in &dones {
            ctx.wait(d);
        }
    }

    /// The baseline **host-pipeline get** (inter-node D-D): the requester
    /// sends a request; the *target PE* (when it progresses) D2H-copies
    /// and RDMA-writes chunks into the requester's staging; the requester
    /// H2D-copies each staged chunk into the final device buffer.
    pub(crate) fn host_pipeline_get(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        src: MemRef,
        len: u64,
        from: ProcId,
    ) {
        // reserve a contiguous landing strip in my staging
        let my_off = self.alloc_staging_blocking(ctx, me, len);
        let my_stg = self.layout().staging_base(me).add(my_off);
        let served = Completion::new();
        let chunk = self.cfg().pipeline_chunk;
        let n = len.div_ceil(chunk);
        let signal = self.proxy_signal_latency()
            + self.proxy_stall_extra(self.cluster().topo().node_of(from), ctx.now());
        let req = GetRequest {
            src,
            req_staging: my_stg,
            len,
            requester: me,
            served: served.clone(),
        };
        let mach = self.clone();
        ctx.advance(self.cluster().hw().ib.post_overhead);
        ctx.with_sched(|s| {
            s.schedule_in(
                signal,
                Box::new(move |s| {
                    mach.arrive_pending(s, from, PendingWork::ServeGet(req));
                }),
            );
        });
        // as chunks land in my staging, H2D them to the final buffer
        // (synchronous cudaMemcpy calls, as in the baseline runtime)
        for i in 0..n {
            ctx.wait_threshold(&served, i + 1);
            let off = i * chunk;
            let clen = chunk.min(len - off);
            self.gpus().memcpy_sync(ctx, my_stg.add(off), dst.add(off), clen);
        }
        self.pe_state(me).staging_alloc.lock().free(my_off, len);
    }
}
