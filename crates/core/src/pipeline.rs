//! Chunked pipeline protocols and the node-proxy engine.
//!
//! These implement the large-message designs of paper §III-C:
//! **Pipeline GDR write** (D2H staging chunks + GDR RDMA writes, truly
//! one-sided), the **proxy-based** protocols (a node-level agent moves
//! data via IPC + RDMA on behalf of PEs, keeping the *target* PE out of
//! the loop), and the baseline **host-based pipeline** [15] whose final
//! copy needs the target process.
//!
//! Under a fault plan every chunk post draws from the seeded CQE
//! stream (see [`crate::recovery`]): chunks retry with backoff, a
//! chunk that exhausts its budget releases its staging credits and
//! poisons the completions the op tracks, and the op surfaces
//! [`TransferError::PartialDelivery`] naming exactly how many bytes
//! landed.

use crate::error::TransferError;
use crate::machine::{OpToken, ShmemMachine};
use crate::recovery::ChunkRecovery;
use crate::state::{Delivery, GetRequest, PendingWork, Protocol};
use ib_sim::RdmaCompletion;
use pcie_sim::mem::MemRef;
use pcie_sim::ProcId;
use sim_core::{Action, Completion, Sched, SimDuration, TaskCtx};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The retry-invariant identity of one pipeline-GDR chunk. Its staging
/// offset is deliberately *not* here: a replay releases the failed
/// attempt's credit and re-acquires a fresh (possibly different) slot,
/// re-staging from `src_c` — which is what makes chunk replay
/// idempotent instead of a use-after-free of recycled staging space.
#[derive(Clone, Copy)]
struct PipeChunk {
    me: ProcId,
    /// Device source of this chunk (replays re-stage from here).
    src_c: MemRef,
    dst_c: MemRef,
    rkey: ib_sim::Rkey,
    clen: u64,
    index: u32,
    token: OpToken,
    trace: bool,
    track: obs::TrackId,
}

impl ShmemMachine {
    /// Allocate from `pe`'s staging area, blocking (with virtual-time
    /// polling) until in-flight chunks free space — credit-based flow
    /// control. Panics if the request can never fit; returns a typed
    /// [`TransferError::Timeout`] if the area stays full for 500 ms of
    /// virtual time — a flow-control stall (in-flight chunks are not
    /// freeing; raise `RuntimeConfig::staging` if the workload is
    /// legitimate). The panicking `putmem`/`getmem` wrappers surface
    /// that timeout with their usual fail-loud unwrap.
    pub(crate) fn alloc_staging_blocking(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        pe: ProcId,
        len: u64,
    ) -> Result<u64, TransferError> {
        const STALL_NS: u64 = 500_000_000;
        let cap = self.cfg().staging;
        assert!(
            len <= cap,
            "staging request of {len} bytes exceeds the {cap}-byte staging area; \
             raise RuntimeConfig::staging"
        );
        let mut waited = SimDuration::ZERO;
        loop {
            if let Ok(off) = self.pe_state(pe).staging_alloc.lock().alloc(len) {
                return Ok(off);
            }
            let step = SimDuration::from_us(1);
            ctx.advance(step);
            waited += step;
            if waited >= SimDuration::from_ns(STALL_NS) {
                return Err(TransferError::Timeout {
                    after_ns: STALL_NS,
                    diag: String::new(),
                });
            }
        }
    }

    /// Latency of the modelled software ack path (target → source, small
    /// control message over the wire).
    pub(crate) fn ack_latency(&self) -> SimDuration {
        let ib = &self.cluster().hw().ib;
        ib.post_overhead + ib.hca_wqe + ib.wire_latency + ib.switch_latency + ib.cq_delivery
    }

    /// Latency for a proxy-request signal to reach and wake the remote
    /// proxy (paper Fig. 5: source passes a signal to the remote proxy).
    pub(crate) fn proxy_signal_latency(&self) -> SimDuration {
        let ib = &self.cluster().hw().ib;
        ib.post_overhead + ib.hca_wqe + ib.wire_latency + ib.switch_latency + ib.remote_hca
            + SimDuration::from_ns(500)
    }

    /// **Pipeline GDR write** (Enhanced-GDR large put with device source):
    /// chunked D2H copies into the registered staging area, each chunk
    /// RDMA-written (GDR when the destination is a GPU) as soon as it is
    /// staged. Returns when the last D2H copy completes — the paper's
    /// definition of local completion for this protocol. Remote
    /// completions are tracked for `quiet`. No target involvement.
    ///
    /// Under a fault plan each chunk post draws from the CQE stream and
    /// replays through [`Self::pipe_chunk_restage`]; if any chunk
    /// exhausts its retries the op waits for every chunk to resolve and
    /// returns [`TransferError::PartialDelivery`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn pipeline_gdr_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        src: MemRef,
        dst: MemRef,
        dst_domain: crate::addr::Domain,
        len: u64,
        target: ProcId,
        token: OpToken,
    ) -> Result<(), TransferError> {
        let chunk = self.cfg().pipeline_chunk;
        let rkey = self.layout().rkey(dst_domain, target);
        let n = len.div_ceil(chunk);
        let rec = self.obs().clone();
        let track = self.pe_track(me);
        // chunk spans follow the op's sampling verdict
        let trace = rec.spans_on() && token.sampled;
        let recovery = ChunkRecovery::new(len, self.cfg().faults.cqe_armed());
        let outcome = Completion::new();
        let mut last_d2h: Option<Completion> = None;
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            let stg_off = self.alloc_staging_blocking(ctx, me, clen)?;
            let stg = self.layout().staging_base(me).add(stg_off);
            let t_stage = ctx.now();
            let d2h = self.gpus().memcpy_async(ctx, src.add(off), stg, clen);
            let comp = RdmaCompletion::new();
            let pc = PipeChunk {
                me,
                src_c: src.add(off),
                dst_c: dst.add(off),
                rkey,
                clen,
                index: i as u32,
                token,
                trace,
                track,
            };
            let mach = self.clone();
            let comp2 = comp.clone();
            let rec2 = rec.clone();
            let recovery2 = recovery.clone();
            let outcome2 = outcome.clone();
            ctx.with_sched(|s| {
                s.call_on(
                    &d2h,
                    1,
                    Box::new(move |s| {
                        if trace {
                            rec2.span(
                                track,
                                "chunk-d2h",
                                t_stage,
                                s.now(),
                                obs::Payload::Chunk {
                                    protocol: "pipeline-gdr-write",
                                    stage: "d2h",
                                    index: i as u32,
                                    size: clen,
                                    op_id: token.id,
                                },
                            );
                        }
                        mach.pipe_chunk_post(s, pc, stg_off, 0, comp2, recovery2, outcome2);
                    }),
                );
            });
            if i == n - 1 {
                // last chunk's remote completion = the whole put delivered
                self.flow_end_on(ctx, &comp.remote, 1, self.pe_track(target), token);
            }
            self.pe_state(me).track(comp.remote.clone());
            last_d2h = Some(d2h);
        }
        if let Some(c) = last_d2h {
            ctx.wait(&c);
        }
        if recovery.armed() {
            // every chunk must resolve (delivered or given up) before
            // the op can name its outcome
            ctx.wait_threshold(&outcome, n);
            if let Some(e) = recovery.partial_error() {
                self.obs_partial(
                    me,
                    ctx.now(),
                    "pipeline-gdr-write",
                    recovery.delivered(),
                    len,
                    token,
                );
                return Err(e);
            }
        }
        Ok(())
    }

    /// One pipeline-GDR chunk post attempt in event context, with the
    /// staged bytes at `stg_off`. A clean CQE draw (or an unarmed plan)
    /// fires the RDMA write. A fault releases the staging credit at
    /// once — the failed attempt's staged bytes are dead, so a retrying
    /// chunk can never wedge the op's own credit flow control — and the
    /// chunk replays through [`Self::pipe_chunk_restage`] after the
    /// detect + backoff delays, or resolves as failed once the retry
    /// budget is spent.
    #[allow(clippy::too_many_arguments)]
    fn pipe_chunk_post(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        c: PipeChunk,
        stg_off: u64,
        attempt: u32,
        comp: RdmaCompletion,
        recovery: Arc<ChunkRecovery>,
        outcome: Completion,
    ) {
        if !recovery.armed() {
            self.pipe_chunk_fire(s, c, stg_off, &comp);
            return;
        }
        let plan = self.cfg().faults;
        match self.ib().inject_transient_cqe(c.me, s.now()) {
            None => {
                if attempt > 0 {
                    self.obs().fault_tally_at("chunk-recovered", "pipeline-gdr-write", s.now());
                }
                self.pipe_chunk_fire(s, c, stg_off, &comp);
                recovery.chunk_ok(c.clen);
                s.signal(&outcome, 1);
            }
            Some(f) => {
                self.obs_fault(c.me, s.now(), f.kind, "pipeline-gdr-write", c.token);
                self.pe_state(c.me).staging_alloc.lock().free(stg_off, c.clen);
                if attempt >= plan.max_retries {
                    self.obs().fault_tally_at("exhausted", "pipeline-gdr-write", s.now());
                    let remote = comp.remote.clone();
                    s.schedule_in(
                        f.detect,
                        Box::new(move |s| {
                            recovery.chunk_failed();
                            // poison the tracked remote completion so
                            // quiet and the op's flow end cannot hang on
                            // a chunk that will never reach the wire
                            s.signal(&remote, 1);
                            s.signal(&outcome, 1);
                        }),
                    );
                } else {
                    let backoff = plan.backoff_ns(c.token.id, attempt);
                    let m = self.clone();
                    s.schedule_in(
                        f.detect,
                        Box::new(move |s| {
                            m.obs_chunk_retry(
                                c.me,
                                s.now(),
                                "pipeline-gdr-write",
                                attempt + 1,
                                backoff,
                                c.token,
                            );
                            let m2 = m.clone();
                            s.schedule_in(
                                SimDuration::from_ns(backoff),
                                Box::new(move |s| {
                                    m2.pipe_chunk_restage(
                                        s,
                                        c,
                                        attempt + 1,
                                        comp,
                                        recovery,
                                        outcome,
                                        SimDuration::ZERO,
                                    );
                                }),
                            );
                        }),
                    );
                }
            }
        }
    }

    /// Post one staged pipeline chunk: the GDR RDMA write, the
    /// staging-credit release at local completion, and the chunk-rdma
    /// span.
    fn pipe_chunk_fire(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        c: PipeChunk,
        stg_off: u64,
        comp: &RdmaCompletion,
    ) {
        let stg = self.layout().staging_base(c.me).add(stg_off);
        let t_rdma = s.now();
        self.ib()
            .rdma_write_start(s, c.me, stg, c.rkey, c.dst_c, c.clen, comp)
            .expect("pipeline chunk rdma");
        // free my staging when the HCA has read it
        let m = self.clone();
        s.call_on(
            &comp.local,
            1,
            Box::new(move |_| {
                m.pe_state(c.me).staging_alloc.lock().free(stg_off, c.clen);
            }),
        );
        if c.trace {
            let rec = self.obs().clone();
            let remote = comp.remote.clone();
            s.call_on(
                &remote,
                1,
                Box::new(move |s| {
                    rec.span(
                        c.track,
                        "chunk-rdma",
                        t_rdma,
                        s.now(),
                        obs::Payload::Chunk {
                            protocol: "pipeline-gdr-write",
                            stage: "rdma",
                            index: c.index,
                            size: c.clen,
                            op_id: c.token.id,
                        },
                    );
                }),
            );
        }
    }

    /// Replay leg of [`Self::pipe_chunk_post`]: re-acquire a staging
    /// credit (polling in event context — the task loop may be racing
    /// for the same credits), re-stage the chunk from its GPU source,
    /// and re-enter the post path. Gives the chunk up if credits stay
    /// dry for the same 500 ms bound the blocking allocator uses.
    #[allow(clippy::too_many_arguments)]
    fn pipe_chunk_restage(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        c: PipeChunk,
        attempt: u32,
        comp: RdmaCompletion,
        recovery: Arc<ChunkRecovery>,
        outcome: Completion,
        waited: SimDuration,
    ) {
        let got = self.pe_state(c.me).staging_alloc.lock().alloc(c.clen);
        let stg_off = match got {
            Ok(off) => off,
            Err(_) if waited < SimDuration::from_ms(500) => {
                let step = SimDuration::from_us(1);
                let m = self.clone();
                s.schedule_in(
                    step,
                    Box::new(move |s| {
                        m.pipe_chunk_restage(
                            s,
                            c,
                            attempt,
                            comp,
                            recovery,
                            outcome,
                            waited + step,
                        );
                    }),
                );
                return;
            }
            Err(_) => {
                // credit starvation during replay: resolve the chunk as
                // failed rather than probing forever
                self.obs().fault_tally_at("exhausted", "pipeline-gdr-write", s.now());
                recovery.chunk_failed();
                s.signal(&comp.remote, 1);
                s.signal(&outcome, 1);
                return;
            }
        };
        let stg = self.layout().staging_base(c.me).add(stg_off);
        let t_stage = s.now();
        let d2h = Completion::new();
        self.gpus().dma_start(s, c.src_c, stg, c.clen, &d2h);
        let m = self.clone();
        s.call_on(
            &d2h,
            1,
            Box::new(move |s| {
                if c.trace {
                    m.obs().span(
                        c.track,
                        "chunk-d2h",
                        t_stage,
                        s.now(),
                        obs::Payload::Chunk {
                            protocol: "pipeline-gdr-write",
                            stage: "d2h",
                            index: c.index,
                            size: c.clen,
                            op_id: c.token.id,
                        },
                    );
                }
                m.pipe_chunk_post(s, c, stg_off, attempt, comp, recovery, outcome);
            }),
        );
    }

    /// The baseline **host-based pipeline put** [15] (inter-node D-D):
    /// D2H staging chunks, RDMA into the *target's* staging, and the
    /// final H2D copy performed by the target process when it enters the
    /// library. The source tracks per-chunk acks; `quiet` therefore
    /// blocks until the target has progressed — the one-sidedness
    /// violation the paper measures in Fig. 10.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn host_pipeline_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        src: MemRef,
        dst: MemRef,
        len: u64,
        target: ProcId,
        token: OpToken,
    ) -> Result<(), TransferError> {
        let chunk = self.cfg().pipeline_chunk;
        let host_rkey = self.layout().host_rkey(target);
        let n = len.div_ceil(chunk);
        // The baseline is rendezvous-based: an RTS/CTS handshake with the
        // target's runtime precedes the pipeline (cf. [17]).
        ctx.advance(self.ack_latency() * 2);
        let recovery = ChunkRecovery::new(len, self.cfg().faults.cqe_armed());
        let outcome = Completion::new();
        let mut last_d2h: Option<Completion> = None;
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            let stg_off = self.alloc_staging_blocking(ctx, me, clen)?;
            let stg = self.layout().staging_base(me).add(stg_off);
            let t_off = match self.alloc_staging_blocking(ctx, target, clen) {
                Ok(o) => o,
                Err(e) => {
                    // free the credit this chunk already holds before
                    // surfacing the stall
                    self.pe_state(me).staging_alloc.lock().free(stg_off, clen);
                    return Err(e);
                }
            };
            let t_stg = self.layout().staging_base(target).add(t_off);
            // Small/medium messages use synchronous cudaMemcpy staging
            // (each chunk pays the full driver overhead — most of the
            // 20.9us of paper Table II); large transfers pipeline with
            // async copies like the real MVAPICH2-X implementation, so
            // both designs converge to staging bandwidth (paper Fig 8b).
            let d2h = if clen >= 256 << 10 {
                self.gpus().memcpy_async(ctx, src.add(off), stg, clen)
            } else {
                self.gpus().memcpy_sync(ctx, src.add(off), stg, clen);
                let c = Completion::new();
                ctx.with_sched(|s| s.signal(&c, 1));
                c
            };
            let comp = RdmaCompletion::new();
            let ack = Completion::new();
            let dst_c = dst.add(off);
            // once the chunk is staged: RDMA it into the target staging
            // (drawing this chunk's CQE fault stream first)
            let mach = self.clone();
            let comp_c = comp.clone();
            let recovery2 = recovery.clone();
            let outcome2 = outcome.clone();
            let ack_p = ack.clone();
            ctx.with_sched(|s| {
                s.call_on(
                    &d2h,
                    1,
                    Box::new(move |s| {
                        let m = mach.clone();
                        let rec_ok = recovery2.clone();
                        let out_ok = outcome2.clone();
                        let post: Action = Box::new(move |s| {
                            m.ib()
                                .rdma_write_start(s, me, stg, host_rkey, t_stg, clen, &comp_c)
                                .expect("host-pipeline chunk rdma");
                            rec_ok.chunk_ok(clen);
                            if rec_ok.armed() {
                                s.signal(&out_ok, 1);
                            }
                        });
                        let m2 = mach.clone();
                        let on_fail: Action = Box::new(move |s| {
                            // both staging credits die with the chunk;
                            // poison the ack so quiet and the op's flow
                            // end cannot hang on it
                            m2.pe_state(me).staging_alloc.lock().free(stg_off, clen);
                            m2.pe_state(target).staging_alloc.lock().free(t_off, clen);
                            recovery2.chunk_failed();
                            s.signal(&ack_p, 1);
                            s.signal(&outcome2, 1);
                        });
                        mach.chunk_post_with_retry(
                            s,
                            me,
                            "host-pipeline-staged",
                            token,
                            post,
                            on_fail,
                        );
                    }),
                );
            });
            // free my staging when the HCA has read it
            let mach = self.clone();
            ctx.with_sched(|s| {
                s.call_on(
                    &comp.local,
                    1,
                    Box::new(move |_| {
                        mach.pe_state(me).staging_alloc.lock().free(stg_off, clen);
                    }),
                );
            });
            // when the payload lands in target staging, hand the final
            // H2D to the target's progress engine
            let mach = self.clone();
            let ack2 = ack.clone();
            ctx.with_sched(|s| {
                s.call_on(
                    &comp.remote,
                    1,
                    Box::new(move |s| {
                        mach.arrive_pending(
                            s,
                            target,
                            PendingWork::Deliver(Delivery {
                                staged: t_stg,
                                dst: dst_c,
                                len: clen,
                                ack: ack2,
                                staging_off: t_off,
                            }),
                        );
                    }),
                );
            });
            if i == n - 1 {
                // the op is fully delivered once the target has H2D-copied
                // (and acked) the final chunk
                self.flow_end_on(ctx, &ack, 1, self.pe_track(target), token);
            }
            self.pe_state(me).track(ack);
            last_d2h = Some(d2h);
        }
        if let Some(c) = last_d2h {
            ctx.wait(&c);
        }
        if recovery.armed() {
            ctx.wait_threshold(&outcome, n);
            if let Some(e) = recovery.partial_error() {
                self.obs_partial(
                    me,
                    ctx.now(),
                    "host-pipeline-staged",
                    recovery.delivered(),
                    len,
                    token,
                );
                return Err(e);
            }
        }
        Ok(())
    }

    /// **Proxy-assisted put** (Enhanced-GDR, inter-socket destination):
    /// chunks are staged into the *target's* host staging via plain host
    /// RDMA; the remote **proxy** (not the target PE) performs the final
    /// H2D copies. One-sided: quiet waits on proxy copies, which run as
    /// hardware events regardless of what the target PE is doing.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn proxy_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        src: MemRef,
        dst: MemRef,
        len: u64,
        target: ProcId,
        token: OpToken,
    ) -> Result<(), TransferError> {
        let chunk = self.cfg().pipeline_chunk;
        let host_rkey = self.layout().host_rkey(target);
        let n = len.div_ceil(chunk);
        let src_dev = src.is_device();
        let node = self.cluster().topo().node_of(target);
        // base wake latency; any stall-window delay is sampled at each
        // chunk's arrival, so a mid-transfer fault window — and the
        // agent restart that ends it — is modelled per chunk
        let base_signal = self.proxy_signal_latency();
        let restart_seen = Arc::new(AtomicBool::new(false));
        self.proxy(node).puts_served.fetch_add(1, Ordering::Relaxed);
        self.proxy(node).bytes.fetch_add(len, Ordering::Relaxed);
        let rec = self.obs().clone();
        let ptrack = self.proxy_track(node);
        let trace = rec.spans_on() && token.sampled;
        if trace {
            rec.instant(
                ptrack,
                "proxy-request",
                ctx.now(),
                obs::Payload::Proxy {
                    kind: "put",
                    size: len,
                    origin_pe: me.0,
                },
            );
        }
        let recovery = ChunkRecovery::new(len, self.cfg().faults.cqe_armed());
        let outcome = Completion::new();
        let mut last_local: Option<Completion> = None;
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            let t_off = self.alloc_staging_blocking(ctx, target, clen)?;
            let t_stg = self.layout().staging_base(target).add(t_off);
            let dst_c = dst.add(off);
            let comp = RdmaCompletion::new();
            let proxy_done = Completion::new();

            if src_dev {
                // stage through my host first (chunked D2H), then RDMA
                let stg_off = match self.alloc_staging_blocking(ctx, me, clen) {
                    Ok(o) => o,
                    Err(e) => {
                        self.pe_state(target).staging_alloc.lock().free(t_off, clen);
                        return Err(e);
                    }
                };
                let stg = self.layout().staging_base(me).add(stg_off);
                let d2h = self.gpus().memcpy_async(ctx, src.add(off), stg, clen);
                let mach = self.clone();
                let comp2 = comp.clone();
                let recovery2 = recovery.clone();
                let outcome2 = outcome.clone();
                let pd_p = proxy_done.clone();
                ctx.with_sched(|s| {
                    s.call_on(
                        &d2h,
                        1,
                        Box::new(move |s| {
                            let m = mach.clone();
                            let rec_ok = recovery2.clone();
                            let out_ok = outcome2.clone();
                            let post: Action = Box::new(move |s| {
                                m.ib()
                                    .rdma_write_start(
                                        s, me, stg, host_rkey, t_stg, clen, &comp2,
                                    )
                                    .expect("proxy-put chunk rdma");
                                rec_ok.chunk_ok(clen);
                                if rec_ok.armed() {
                                    s.signal(&out_ok, 1);
                                }
                            });
                            let m2 = mach.clone();
                            let on_fail: Action = Box::new(move |s| {
                                m2.pe_state(me).staging_alloc.lock().free(stg_off, clen);
                                m2.pe_state(target).staging_alloc.lock().free(t_off, clen);
                                recovery2.chunk_failed();
                                s.signal(&pd_p, 1);
                                s.signal(&outcome2, 1);
                            });
                            mach.chunk_post_with_retry(
                                s,
                                me,
                                "proxy-pipeline",
                                token,
                                post,
                                on_fail,
                            );
                        }),
                    );
                });
                let mach = self.clone();
                ctx.with_sched(|s| {
                    s.call_on(
                        &comp.local,
                        1,
                        Box::new(move |_| {
                            mach.pe_state(me).staging_alloc.lock().free(stg_off, clen);
                        }),
                    );
                });
                last_local = Some(d2h);
            } else {
                self.ensure_registered(ctx, me, src.add(off), clen);
                let mach = self.clone();
                let comp2 = comp.clone();
                let recovery2 = recovery.clone();
                let outcome2 = outcome.clone();
                let pd_p = proxy_done.clone();
                let local_p = comp.local.clone();
                let src_c = src.add(off);
                ctx.with_sched(|s| {
                    let m = mach.clone();
                    let rec_ok = recovery2.clone();
                    let out_ok = outcome2.clone();
                    let post: Action = Box::new(move |s| {
                        m.ib()
                            .rdma_write_start(s, me, src_c, host_rkey, t_stg, clen, &comp2)
                            .expect("proxy-put chunk rdma");
                        rec_ok.chunk_ok(clen);
                        if rec_ok.armed() {
                            s.signal(&out_ok, 1);
                        }
                    });
                    let m2 = mach.clone();
                    let on_fail: Action = Box::new(move |s| {
                        // nothing staged on my side; the target credit
                        // dies with the chunk, and both the proxy
                        // completion and the local completion the op
                        // blocks on are poisoned
                        m2.pe_state(target).staging_alloc.lock().free(t_off, clen);
                        recovery2.chunk_failed();
                        s.signal(&pd_p, 1);
                        s.signal(&local_p, 1);
                        s.signal(&outcome2, 1);
                    });
                    mach.chunk_post_with_retry(s, me, "proxy-pipeline", token, post, on_fail);
                });
                last_local = Some(comp.local.clone());
            }

            // when the chunk lands in target staging: the remote proxy
            // wakes (signal latency) and performs the H2D
            let mach = self.clone();
            let pd = proxy_done.clone();
            let rec2 = rec.clone();
            let rs = restart_seen.clone();
            ctx.with_sched(|s| {
                s.call_on(
                    &comp.remote,
                    1,
                    Box::new(move |s| {
                        let t_arrive = s.now();
                        // a stalled proxy agent services this chunk late —
                        // unless its fault window ends first and the
                        // restarted agent re-drives the remaining chunks
                        let signal =
                            base_signal + mach.proxy_stall_or_restart(node, t_arrive, token, &rs);
                        let mach2 = mach.clone();
                        let pd2 = pd.clone();
                        s.schedule_in(
                            signal,
                            Box::new(move |s| {
                                let t_h2d = s.now();
                                if trace {
                                    rec2.span(
                                        ptrack,
                                        "chunk-wakeup",
                                        t_arrive,
                                        t_h2d,
                                        obs::Payload::Chunk {
                                            protocol: "proxy-pipeline",
                                            stage: "wakeup",
                                            index: i as u32,
                                            size: clen,
                                            op_id: token.id,
                                        },
                                    );
                                }
                                let h2d = Completion::new();
                                mach2.gpus().dma_start(s, t_stg, dst_c, clen, &h2d);
                                let mach3 = mach2.clone();
                                s.call_on(
                                    &h2d,
                                    1,
                                    Box::new(move |s| {
                                        if trace {
                                            rec2.span(
                                                ptrack,
                                                "chunk-h2d",
                                                t_h2d,
                                                s.now(),
                                                obs::Payload::Chunk {
                                                    protocol: "proxy-pipeline",
                                                    stage: "h2d",
                                                    index: i as u32,
                                                    size: clen,
                                                    op_id: token.id,
                                                },
                                            );
                                        }
                                        mach3
                                            .pe_state(target)
                                            .staging_alloc
                                            .lock()
                                            .free(t_off, clen);
                                        s.signal(&pd2, 1);
                                    }),
                                );
                            }),
                        );
                    }),
                );
            });
            if i == n - 1 {
                // delivered once the proxy finishes the final H2D copy
                self.flow_end_on(ctx, &proxy_done, 1, self.pe_track(target), token);
            }
            self.pe_state(me).track(proxy_done);
        }
        if let Some(c) = last_local {
            ctx.wait(&c);
        }
        if recovery.armed() {
            ctx.wait_threshold(&outcome, n);
            if let Some(e) = recovery.partial_error() {
                self.obs_partial(
                    me,
                    ctx.now(),
                    "proxy-pipeline",
                    recovery.delivered(),
                    len,
                    token,
                );
                return Err(e);
            }
        }
        Ok(())
    }

    /// **Proxy-based get** (Enhanced-GDR, large get from remote GPU):
    /// the remote node's proxy IPC-copies chunks from the target GPU to
    /// its registered host staging and RDMA-writes them (GDR when the
    /// local destination is a GPU) straight into the requester's buffer.
    /// The target *PE* does nothing; the (blocking) requester waits.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn proxy_get(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        src: MemRef,
        len: u64,
        from: ProcId,
        token: OpToken,
    ) -> Result<(), TransferError> {
        let chunk = self.cfg().pipeline_chunk;
        let n = len.div_ceil(chunk);
        // the proxy writes into our buffer: make sure it is registered
        // and obtain its rkey
        self.ensure_registered(ctx, me, dst, len);
        let dst_mr = self
            .ib()
            .mrs()
            .check_local(me, dst, len)
            .expect("just registered");
        let node = self.cluster().topo().node_of(from);
        // a stalled proxy agent (fault plan) services requests late —
        // unless its fault window ends first and the restarted agent
        // re-drives the transfer's remaining chunks
        let restart_seen = AtomicBool::new(false);
        let signal = self.proxy_signal_latency()
            + self.proxy_stall_or_restart(node, ctx.now(), token, &restart_seen);
        self.proxy(node).gets_served.fetch_add(1, Ordering::Relaxed);
        self.proxy(node).bytes.fetch_add(len, Ordering::Relaxed);
        let rec = self.obs().clone();
        let ptrack = self.proxy_track(node);
        let trace = rec.spans_on() && token.sampled;
        if trace {
            rec.instant(
                ptrack,
                "proxy-request",
                ctx.now(),
                obs::Payload::Proxy {
                    kind: "get",
                    size: len,
                    origin_pe: me.0,
                },
            );
        }
        let recovery = ChunkRecovery::new(len, self.cfg().faults.cqe_armed());
        let done = Completion::new();
        ctx.advance(self.cluster().hw().ib.post_overhead);
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            // credit-based reservation of the remote staging
            let t_off = self.alloc_staging_blocking(ctx, from, clen)?;
            let t_stg = self.layout().staging_base(from).add(t_off);
            let src_c = src.add(off);
            let dst_c = dst.add(off);
            let mach = self.clone();
            let done2 = done.clone();
            let recovery2 = recovery.clone();
            let rkey = dst_mr.rkey;
            let rec2 = rec.clone();
            let t_req = ctx.now();
            ctx.with_sched(|s| {
                s.schedule_in(
                    signal,
                    Box::new(move |s| {
                        // proxy: D2H from the target GPU into its staging
                        let t_wake = s.now();
                        if trace {
                            rec2.span(
                                ptrack,
                                "chunk-wakeup",
                                t_req,
                                t_wake,
                                obs::Payload::Chunk {
                                    protocol: "proxy-pipeline",
                                    stage: "wakeup",
                                    index: i as u32,
                                    size: clen,
                                    op_id: token.id,
                                },
                            );
                        }
                        let d2h = Completion::new();
                        mach.gpus().dma_start(s, src_c, t_stg, clen, &d2h);
                        let mach2 = mach.clone();
                        s.call_on(
                            &d2h,
                            1,
                            Box::new(move |s| {
                                let t_rdma = s.now();
                                if trace {
                                    rec2.span(
                                        ptrack,
                                        "chunk-d2h",
                                        t_wake,
                                        t_rdma,
                                        obs::Payload::Chunk {
                                            protocol: "proxy-pipeline",
                                            stage: "d2h",
                                            index: i as u32,
                                            size: clen,
                                            op_id: token.id,
                                        },
                                    );
                                }
                                let comp = RdmaCompletion::new();
                                let m = mach2.clone();
                                let rec_ok = recovery2.clone();
                                let done_ok = done2.clone();
                                let rec3 = rec2.clone();
                                let post: Action = Box::new(move |s| {
                                    m.ib()
                                        .rdma_write_start(
                                            s, from, t_stg, rkey, dst_c, clen, &comp,
                                        )
                                        .expect("proxy-get chunk rdma");
                                    let m3 = m.clone();
                                    s.call_on(
                                        &comp.local,
                                        1,
                                        Box::new(move |_| {
                                            m3.pe_state(from)
                                                .staging_alloc
                                                .lock()
                                                .free(t_off, clen);
                                        }),
                                    );
                                    let remote = comp.remote.clone();
                                    s.call_on(
                                        &remote,
                                        1,
                                        Box::new(move |s| {
                                            if trace {
                                                rec3.span(
                                                    ptrack,
                                                    "chunk-rdma",
                                                    t_rdma,
                                                    s.now(),
                                                    obs::Payload::Chunk {
                                                        protocol: "proxy-pipeline",
                                                        stage: "rdma",
                                                        index: i as u32,
                                                        size: clen,
                                                        op_id: token.id,
                                                    },
                                                );
                                            }
                                            rec_ok.chunk_ok(clen);
                                            s.signal(&done_ok, 1);
                                        }),
                                    );
                                });
                                let m4 = mach2.clone();
                                let done_f = done2.clone();
                                let rec_f = recovery2.clone();
                                let on_fail: Action = Box::new(move |s| {
                                    m4.pe_state(from).staging_alloc.lock().free(t_off, clen);
                                    rec_f.chunk_failed();
                                    s.signal(&done_f, 1);
                                });
                                mach2.chunk_post_with_retry(
                                    s,
                                    from,
                                    "proxy-pipeline",
                                    token,
                                    post,
                                    on_fail,
                                );
                            }),
                        );
                    }),
                );
            });
        }
        ctx.wait_threshold(&done, n);
        if let Some(e) = recovery.partial_error() {
            self.obs_partial(
                me,
                ctx.now(),
                "proxy-pipeline",
                recovery.delivered(),
                len,
                token,
            );
            return Err(e);
        }
        Ok(())
    }

    /// Ablation fallback: chunked direct GDR reads (proxy disabled) —
    /// pays the PCIe P2P read cap on every chunk. Chunk posts run in
    /// task context, so the standard `post_with_retry` loop applies;
    /// exhausting retries mid-transfer surfaces as a partial delivery.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn chunked_direct_get(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        rkey: ib_sim::Rkey,
        src: MemRef,
        len: u64,
        token: OpToken,
    ) -> Result<(), TransferError> {
        let chunk = self.cfg().pipeline_chunk;
        self.ensure_registered(ctx, me, dst, len);
        let n = len.div_ceil(chunk);
        let mut dones = Vec::with_capacity(n as usize);
        let mut delivered = 0u64;
        let mut failure: Option<TransferError> = None;
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(len - off);
            let posted = self.post_with_retry(ctx, me, Protocol::DirectGdr, token, || {
                self.ib()
                    .post_rdma_read(ctx, me, dst.add(off), rkey, src.add(off), clen)
            });
            match posted {
                Ok(d) => {
                    dones.push(d);
                    delivered += clen;
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // already-posted chunks complete normally either way
        for d in &dones {
            ctx.wait(d);
        }
        match failure {
            None => Ok(()),
            Some(TransferError::RetriesExhausted { .. }) if delivered > 0 => {
                self.obs_partial(me, ctx.now(), "direct-gdr", delivered, len, token);
                Err(TransferError::PartialDelivery {
                    delivered,
                    total: len,
                })
            }
            Some(e) => Err(e),
        }
    }

    /// The baseline **host-pipeline get** (inter-node D-D): the requester
    /// sends a request; the *target PE* (when it progresses) D2H-copies
    /// and RDMA-writes chunks into the requester's staging; the requester
    /// H2D-copies each staged chunk into the final device buffer.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn host_pipeline_get(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        src: MemRef,
        len: u64,
        from: ProcId,
        token: OpToken,
    ) -> Result<(), TransferError> {
        // reserve a contiguous landing strip in my staging
        let my_off = self.alloc_staging_blocking(ctx, me, len)?;
        let my_stg = self.layout().staging_base(me).add(my_off);
        let served = Completion::new();
        let chunk = self.cfg().pipeline_chunk;
        let n = len.div_ceil(chunk);
        let signal = self.proxy_signal_latency()
            + self.proxy_stall_extra(self.cluster().topo().node_of(from), ctx.now());
        let recovery = ChunkRecovery::new(len, self.cfg().faults.cqe_armed());
        let req = GetRequest {
            src,
            req_staging: my_stg,
            len,
            requester: me,
            served: served.clone(),
            token,
            recovery: recovery.clone(),
        };
        let mach = self.clone();
        ctx.advance(self.cluster().hw().ib.post_overhead);
        ctx.with_sched(|s| {
            s.schedule_in(
                signal,
                Box::new(move |s| {
                    mach.arrive_pending(s, from, PendingWork::ServeGet(req));
                }),
            );
        });
        // as chunks land in my staging, H2D them to the final buffer
        // (synchronous cudaMemcpy calls, as in the baseline runtime).
        // Failed chunks poison `served`, so the loop cannot hang; their
        // H2D copies move undefined staging bytes, which the typed
        // partial-delivery error below disclaims.
        for i in 0..n {
            ctx.wait_threshold(&served, i + 1);
            let off = i * chunk;
            let clen = chunk.min(len - off);
            self.gpus().memcpy_sync(ctx, my_stg.add(off), dst.add(off), clen);
        }
        self.pe_state(me).staging_alloc.lock().free(my_off, len);
        if let Some(e) = recovery.partial_error() {
            self.obs_partial(
                me,
                ctx.now(),
                "host-pipeline-staged",
                recovery.delivered(),
                len,
                token,
            );
            return Err(e);
        }
        Ok(())
    }
}
