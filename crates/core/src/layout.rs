//! Symmetric heap layout and address resolution.
//!
//! Per PE, the runtime owns:
//! - a **host symmetric heap**, placed inside its node's shared segment
//!   (so node-local peers can `shmem_ptr` into it — paper Fig. 3);
//! - a registered **staging area** next to it (pipeline protocols);
//! - a small **sync area** (barrier / wait_until flags);
//! - a **GPU symmetric heap** carved out of its GPU's device memory.
//!
//! Everything is registered with the fabric at init (descriptors
//! "exchanged between all processes", §III-A), so any PE can resolve any
//! symmetric address to a `(MemRef, Rkey)` pair without target involvement.

use crate::addr::{Domain, SymAddr};
use crate::config::RuntimeConfig;
use ib_sim::{IbVerbs, Rkey};
use pcie_sim::mem::{MemRef, MemSpace};
use pcie_sim::{Cluster, ProcId};
use std::sync::Arc;

/// Size of the per-PE sync area (flags for barrier, wait_until, user sync).
pub const SYNC_AREA: u64 = 64 << 10;

/// Keys a PE needs to address a peer's heaps remotely.
#[derive(Clone, Copy, Debug)]
pub struct PeKeys {
    /// Covers the whole host span (heap + staging + sync).
    pub host: Rkey,
    /// Covers the GPU heap.
    pub gpu: Rkey,
}

/// Resolved layout for the whole job.
pub struct HeapLayout {
    cluster: Arc<Cluster>,
    host_heap: u64,
    staging: u64,
    /// host heap + staging + sync, rounded: one PE's slice of the segment.
    span: u64,
    /// Per-PE base of its GPU heap in device memory.
    gpu_bases: Vec<MemRef>,
    /// Everyone's rkeys, indexed by PE.
    keys: Vec<PeKeys>,
}

impl HeapLayout {
    /// Create segments and GPU heaps, register everything, and build the
    /// exchanged-descriptor table. Called once at machine construction.
    pub fn build(
        cluster: &Arc<Cluster>,
        gpus: &gpu_sim::GpuRuntime,
        ib: &Arc<IbVerbs>,
        cfg: &RuntimeConfig,
    ) -> HeapLayout {
        let topo = cluster.topo();
        // the sync area's fixed cell map must hold this job size
        // (reduce slots, collective flags, flag-scratch mirror)
        let n = topo.nprocs() as u64;
        use crate::sync::cells;
        assert!(
            cells::REDUCE_DATA + cells::SLOT * n <= cells::COLL_FLAGS,
            "{n} PEs overflow the reduce-slot region (max {})",
            (cells::COLL_FLAGS - cells::REDUCE_DATA) / cells::SLOT
        );
        assert!(
            cells::COLL_FLAGS + 8 * n <= cells::FLAG_SCRATCH,
            "{n} PEs overflow the collective-flag region"
        );
        let span = cfg.host_heap + cfg.staging + SYNC_AREA;
        // One shared segment per node holding every local PE's host span.
        for n in 0..topo.nnodes() {
            let node = pcie_sim::NodeId(n as u32);
            let size = span * topo.spec().procs_per_node as u64;
            cluster.create_shared_segment(node, size as usize);
        }
        let mut gpu_bases = Vec::with_capacity(topo.nprocs());
        let mut keys = Vec::with_capacity(topo.nprocs());
        for p in topo.all_procs() {
            let gpu = gpus.gpu(topo.gpu_of(p));
            let gbase = gpu
                .malloc(cfg.gpu_heap)
                .expect("device memory exhausted while creating GPU symmetric heap");
            gpu_bases.push(gbase);
        }
        for p in topo.all_procs() {
            let seg = MemSpace::Shared(topo.seg_of_node(topo.node_of(p)));
            let host_base = MemRef::new(seg, topo.local_rank(p) as u64 * span);
            let host_mr = ib.reg_mr_nocost(p, host_base, span);
            let gpu_mr = ib.reg_mr_nocost(p, gpu_bases[p.index()], cfg.gpu_heap);
            keys.push(PeKeys {
                host: host_mr.rkey,
                gpu: gpu_mr.rkey,
            });
        }
        HeapLayout {
            cluster: cluster.clone(),
            host_heap: cfg.host_heap,
            staging: cfg.staging,
            span,
            gpu_bases,
            keys,
        }
    }

    pub fn host_heap_size(&self) -> u64 {
        self.host_heap
    }

    pub fn staging_size(&self) -> u64 {
        self.staging
    }

    /// Base of `pe`'s host symmetric heap (inside its node's segment).
    pub fn host_base(&self, pe: ProcId) -> MemRef {
        let topo = self.cluster.topo();
        let seg = MemSpace::Shared(topo.seg_of_node(topo.node_of(pe)));
        MemRef::new(seg, topo.local_rank(pe) as u64 * self.span)
    }

    /// Base of `pe`'s registered staging area.
    pub fn staging_base(&self, pe: ProcId) -> MemRef {
        self.host_base(pe).add(self.host_heap)
    }

    /// Base of `pe`'s sync area.
    pub fn sync_base(&self, pe: ProcId) -> MemRef {
        self.host_base(pe).add(self.host_heap + self.staging)
    }

    /// Base of `pe`'s GPU symmetric heap.
    pub fn gpu_base(&self, pe: ProcId) -> MemRef {
        self.gpu_bases[pe.index()]
    }

    /// Resolve a symmetric address on a given PE.
    pub fn resolve(&self, sym: SymAddr, pe: ProcId) -> MemRef {
        match sym.domain {
            Domain::Host => {
                debug_assert!(sym.offset < self.host_heap, "host heap overflow");
                self.host_base(pe).add(sym.offset)
            }
            Domain::Gpu => self.gpu_bases[pe.index()].add(sym.offset),
        }
    }

    /// The rkey to present when touching `domain` memory of `pe`.
    pub fn rkey(&self, domain: Domain, pe: ProcId) -> Rkey {
        match domain {
            Domain::Host => self.keys[pe.index()].host,
            Domain::Gpu => self.keys[pe.index()].gpu,
        }
    }

    /// rkey covering the host span (heap + staging + sync) of `pe`.
    pub fn host_rkey(&self, pe: ProcId) -> Rkey {
        self.keys[pe.index()].host
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;
    use gpu_sim::GpuRuntime;
    use pcie_sim::{ClusterSpec, HwProfile};
    use sim_core::Sim;

    fn build(nodes: usize, ppn: usize) -> (Arc<Cluster>, HeapLayout) {
        let sim = Sim::new();
        let cluster = Cluster::new(ClusterSpec::wilkes(nodes, ppn), HwProfile::wilkes());
        let gpus = GpuRuntime::new(&sim, cluster.clone(), 64 << 20);
        let ib = IbVerbs::new(&sim, gpus.clone());
        let cfg = RuntimeConfig::tuned(Design::EnhancedGdr);
        let layout = HeapLayout::build(&cluster, &gpus, &ib, &cfg);
        (cluster, layout)
    }

    #[test]
    fn layout_is_disjoint_across_local_pes() {
        let (_c, l) = build(1, 2);
        let h0 = l.host_base(ProcId(0));
        let h1 = l.host_base(ProcId(1));
        assert_eq!(h0.space, h1.space, "same node segment");
        let span = l.host_heap_size() + l.staging_size() + SYNC_AREA;
        assert_eq!(h1.offset - h0.offset, span);
        // staging and sync sit inside the span
        assert!(l.staging_base(ProcId(0)).offset < h1.offset);
        assert!(l.sync_base(ProcId(0)).offset < h1.offset);
    }

    #[test]
    fn resolve_is_symmetric() {
        let (_c, l) = build(2, 2);
        let sym = SymAddr::new(Domain::Gpu, 0x40);
        for pe in 0..4 {
            let r = l.resolve(sym, ProcId(pe));
            assert!(r.is_device());
            assert_eq!(r.offset, l.gpu_base(ProcId(pe)).offset + 0x40);
        }
        let symh = SymAddr::new(Domain::Host, 0x80);
        let r2 = l.resolve(symh, ProcId(2));
        assert_eq!(r2, l.host_base(ProcId(2)).add(0x80));
    }

    #[test]
    fn distinct_pes_get_distinct_gpu_heaps() {
        let (c, l) = build(1, 2);
        let g0 = l.gpu_base(ProcId(0));
        let g1 = l.gpu_base(ProcId(1));
        // different GPUs on a 2-GPU node
        assert_ne!(g0.space, g1.space);
        let _ = c;
    }

    #[test]
    fn keys_differ_per_pe_and_domain() {
        let (_c, l) = build(2, 1);
        assert_ne!(l.rkey(Domain::Host, ProcId(0)), l.rkey(Domain::Gpu, ProcId(0)));
        assert_ne!(l.rkey(Domain::Host, ProcId(0)), l.rkey(Domain::Host, ProcId(1)));
    }
}
