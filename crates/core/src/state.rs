//! Per-PE runtime state: allocators, progress queue, outstanding ops,
//! registration cache, and statistics.

use parking_lot::Mutex;
use pcie_sim::alloc::RangeAlloc;
use pcie_sim::mem::MemRef;
use pcie_sim::ProcId;
use sim_core::{Completion, Link, LinkSpec};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Which concrete protocol serviced an operation — the runtime records
/// this so tests and the Table I harness can verify protocol selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Protocol {
    /// Node-local CPU copy through the shared segment (`shmem_ptr` path).
    ShmCopy = 0,
    /// Single CUDA (IPC) copy, source-driven.
    IpcCopy,
    /// Two-copy staged path through the source's staging area
    /// (the baseline's unoptimized inter-domain intra-node path).
    TwoCopyStaged,
    /// GDR loopback RDMA through the PE's own HCA (intra-node).
    LoopbackGdr,
    /// Direct GDR RDMA to/from the remote node (inter-node small/medium).
    DirectGdr,
    /// Chunked D2H staging + GDR RDMA write, truly one-sided (inter-node
    /// large puts).
    PipelineGdrWrite,
    /// Host-based pipeline with target-side final copy [15]
    /// (breaks one-sidedness).
    HostPipelineStaged,
    /// Node-proxy reverse pipeline (inter-node large gets).
    ProxyPipeline,
    /// Plain host RDMA (H-H inter-node, both designs).
    HostRdma,
    /// IB hardware atomic (possibly via GDR).
    HwAtomic,
}

impl Protocol {
    pub const COUNT: usize = 10;

    /// Every protocol, in counter-index order (for rendering loops).
    pub const ALL: [Protocol; Protocol::COUNT] = [
        Protocol::ShmCopy,
        Protocol::IpcCopy,
        Protocol::TwoCopyStaged,
        Protocol::LoopbackGdr,
        Protocol::DirectGdr,
        Protocol::PipelineGdrWrite,
        Protocol::HostPipelineStaged,
        Protocol::ProxyPipeline,
        Protocol::HostRdma,
        Protocol::HwAtomic,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Protocol::ShmCopy => "shm-copy",
            Protocol::IpcCopy => "ipc-copy",
            Protocol::TwoCopyStaged => "two-copy-staged",
            Protocol::LoopbackGdr => "loopback-gdr",
            Protocol::DirectGdr => "direct-gdr",
            Protocol::PipelineGdrWrite => "pipeline-gdr-write",
            Protocol::HostPipelineStaged => "host-pipeline-staged",
            Protocol::ProxyPipeline => "proxy-pipeline",
            Protocol::HostRdma => "host-rdma",
            Protocol::HwAtomic => "hw-atomic",
        }
    }

    /// Inverse of [`Protocol::name`] — event-context call sites carry
    /// only the name and need the enum back to key health tracking.
    pub fn from_name(name: &str) -> Option<Protocol> {
        Protocol::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Per-PE operation counters.
#[derive(Clone, Debug, Default)]
pub struct PeStats {
    pub puts: u64,
    pub gets: u64,
    pub atomics: u64,
    pub bytes_put: u64,
    pub bytes_get: u64,
    pub barriers: u64,
    pub by_protocol: [u64; Protocol::COUNT],
    /// Target-side deferred deliveries executed (host-pipeline progress).
    pub progressed: u64,
}

impl PeStats {
    pub fn count(&mut self, p: Protocol) {
        self.by_protocol[p as usize] += 1;
    }

    pub fn of(&self, p: Protocol) -> u64 {
        self.by_protocol[p as usize]
    }
}

/// Deferred target-side work (the host-pipeline's last stage): the data
/// has landed in the target's staging area; the *target* must copy it to
/// its GPU and acknowledge. Executed only when the target enters the
/// library — this is exactly what breaks one-sidedness in the baseline.
pub struct Delivery {
    /// Where the payload currently sits (target staging).
    pub staged: MemRef,
    /// Final destination (target GPU heap).
    pub dst: MemRef,
    pub len: u64,
    /// Signalled (after the modelled ack latency) once delivered; the
    /// source's `quiet` waits on these.
    pub ack: Completion,
    /// Staging range to release after delivery (offset within staging).
    pub staging_off: u64,
}

/// A pending remote get request the target must service (host-pipeline).
pub struct GetRequest {
    /// Remote source on this PE (device memory).
    pub src: MemRef,
    /// Requester's staging area slot to RDMA the data into.
    pub req_staging: MemRef,
    pub len: u64,
    /// Requester PE (for path selection).
    pub requester: ProcId,
    /// Signalled when the data has been written to the requester staging.
    pub served: Completion,
    /// The requesting op's identity, for fault draws and trace events on
    /// the serving side.
    pub(crate) token: crate::machine::OpToken,
    /// Shared outcome accounting: serve-side chunk failures surface as
    /// the requester's `TransferError::PartialDelivery`.
    pub(crate) recovery: std::sync::Arc<crate::recovery::ChunkRecovery>,
}

/// Target-side deferred work item.
pub enum PendingWork {
    Deliver(Delivery),
    ServeGet(GetRequest),
}

/// Everything one PE owns at runtime.
pub struct PeState {
    pub id: ProcId,
    /// True while the PE is executing a library call (progress happens).
    pub in_library: AtomicBool,
    /// Deferred target-side work (host-pipeline only).
    pub pending: Mutex<VecDeque<PendingWork>>,
    /// Remote completions of outstanding one-sided ops (quiet waits these).
    pub outstanding: Mutex<Vec<Completion>>,
    /// Symmetric heap allocators (replicated state: symmetric as long as
    /// every PE allocates collectively in the same order).
    pub host_alloc: Mutex<RangeAlloc>,
    pub gpu_alloc: Mutex<RangeAlloc>,
    /// Private (non-symmetric) host memory allocator.
    pub priv_alloc: Mutex<RangeAlloc>,
    /// Staging-area allocator (registered bounce buffers).
    pub staging_alloc: Mutex<RangeAlloc>,
    pub stats: Mutex<PeStats>,
    /// Barrier generation counter (for the dissemination barrier).
    pub barrier_gen: Mutex<u64>,
    /// Generation counter for the other collectives.
    pub coll_gen: Mutex<u64>,
    /// The MPI library's single progress thread: pinned-pool staging
    /// copies serialize on it (used by the two-sided layer).
    pub pin_engine: Mutex<Link>,
    /// RMA op sequence number, the basis of per-op correlation ids
    /// (flow events) and deterministic span sampling.
    pub op_seq: AtomicU64,
}

impl PeState {
    pub fn new(
        id: ProcId,
        host_heap: u64,
        gpu_heap: u64,
        staging: u64,
        private: u64,
        memcpy_bw: f64,
    ) -> PeState {
        PeState {
            id,
            in_library: AtomicBool::new(false),
            pending: Mutex::new(VecDeque::new()),
            outstanding: Mutex::new(Vec::new()),
            host_alloc: Mutex::new(RangeAlloc::new(host_heap, 64)),
            gpu_alloc: Mutex::new(RangeAlloc::new(gpu_heap, 256)),
            priv_alloc: Mutex::new(RangeAlloc::new(private, 64)),
            staging_alloc: Mutex::new(RangeAlloc::new(staging, 256)),
            stats: Mutex::new(PeStats::default()),
            barrier_gen: Mutex::new(0),
            coll_gen: Mutex::new(0),
            pin_engine: Mutex::new(Link::new(LinkSpec::new(
                sim_core::SimDuration::from_ns(200),
                memcpy_bw,
            ))),
            op_seq: AtomicU64::new(0),
        }
    }

    pub fn enter_library(&self) {
        self.in_library.store(true, Ordering::SeqCst);
    }

    pub fn leave_library(&self) {
        self.in_library.store(false, Ordering::SeqCst);
    }

    pub fn is_in_library(&self) -> bool {
        self.in_library.load(Ordering::SeqCst)
    }

    /// Record an outstanding one-sided op for `quiet`.
    pub fn track(&self, remote: Completion) {
        self.outstanding.lock().push(remote);
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names_cover_all_variants() {
        let all = [
            Protocol::ShmCopy,
            Protocol::IpcCopy,
            Protocol::TwoCopyStaged,
            Protocol::LoopbackGdr,
            Protocol::DirectGdr,
            Protocol::PipelineGdrWrite,
            Protocol::HostPipelineStaged,
            Protocol::ProxyPipeline,
            Protocol::HostRdma,
            Protocol::HwAtomic,
        ];
        assert_eq!(all.len(), Protocol::COUNT);
        let mut stats = PeStats::default();
        for p in all {
            stats.count(p);
            assert_eq!(stats.of(p), 1, "{}", p.name());
        }
    }

    #[test]
    fn library_flag_toggles() {
        let st = PeState::new(ProcId(0), 1024, 1024, 1024, 1024, 6e9);
        assert!(!st.is_in_library());
        st.enter_library();
        assert!(st.is_in_library());
        st.leave_library();
        assert!(!st.is_in_library());
    }

}
