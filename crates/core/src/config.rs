//! Runtime configuration: design selection and tuning thresholds.
//!
//! These are the moral equivalents of MVAPICH2-X environment variables
//! (`MV2_GPUDIRECT_LIMIT` and friends): every hybrid-protocol crossover
//! in §III of the paper is a runtime parameter here.

use serde::{Deserialize, Serialize};

/// Which OpenSHMEM runtime design services communication operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum Design {
    /// The basic OpenSHMEM model: host-to-host communication only; users
    /// stage GPU data with explicit cudaMemcpy (paper Table I "Naive").
    Naive,
    /// The CUDA-aware host-based pipeline of Potluri et al. [15]
    /// (IPDPS'13): IPC copies intra-node, D2H→IB→H2D pipeline inter-node,
    /// target process involved in the last stage.
    HostPipeline,
    /// This paper's contribution: GDR loopback + IPC hybrid intra-node,
    /// direct-GDR / pipeline-GDR-write / proxy inter-node — truly
    /// one-sided in every configuration.
    #[default]
    EnhancedGdr,
}

impl Design {
    pub fn name(self) -> &'static str {
        match self {
            Design::Naive => "Naive",
            Design::HostPipeline => "Host-Pipeline",
            Design::EnhancedGdr => "Enhanced-GDR",
        }
    }
}

/// Tunable runtime parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RuntimeConfig {
    pub design: Design,
    /// Symmetric host heap bytes per PE.
    pub host_heap: u64,
    /// Symmetric GPU heap bytes per PE.
    pub gpu_heap: u64,
    /// Registered host staging area per PE (pipeline protocols).
    pub staging: u64,
    /// Intra-node: use GDR loopback for puts up to this size (beyond it,
    /// CUDA IPC copies win; the binding constraint is the inter-socket
    /// P2P write cap when the peer's GPU is on the other socket).
    pub loopback_put_limit: u64,
    /// Intra-node: use GDR loopback for gets up to this size. Much lower
    /// than the put limit: a loopback get is a P2P *read* from the peer
    /// GPU, and the inter-socket read cap is catastrophic (paper: "the
    /// only difference is the threshold as this operation involves a P2P
    /// read from the GPU", §III-B).
    pub loopback_get_limit: u64,
    /// Intra-node D-D uses "the least GDR threshold" (paper §III-B):
    /// both endpoints pay P2P caps, so loopback wins only when tiny.
    pub loopback_dd_limit: u64,
    /// Inter-node: direct-GDR puts up to this size when the *source* is
    /// on the GPU (P2P read gather caps the streaming rate).
    pub gdr_put_limit: u64,
    /// Inter-node: direct-GDR gets up to this size when the *remote*
    /// buffer is on the GPU.
    pub gdr_get_limit: u64,
    /// Chunk size of the pipelined protocols.
    pub pipeline_chunk: u64,
    /// Use the node-proxy for large inter-node gets from GPU memory
    /// (falls back to chunked direct reads when disabled — an ablation).
    pub proxy_enabled: bool,
    /// Minimum message size that engages the proxy: below it, chunked
    /// direct reads win (the proxy signal + staging overhead only pays
    /// off once the P2P read cap dominates).
    pub proxy_get_min: u64,
    /// Polling interval of `shmem_wait_until` and of the host-pipeline
    /// target-side progress engine.
    pub poll_interval_ns: u64,
    /// Enable the reference implementation's per-process service thread
    /// (paper §III): pending target-side work executes even while the
    /// target computes, at the cost of burning a CPU core per process
    /// and lock contention with the main thread. The paper rejects this
    /// in favour of the proxy; provided here for the ablation.
    pub service_thread: bool,
    /// Service-thread polling period and per-item lock/handoff overhead.
    pub service_poll_ns: u64,
    /// Total simulated device memory per GPU (must hold the GPU heaps of
    /// every PE bound to it plus application allocations).
    pub dev_mem: u64,
    /// Private (non-symmetric) host memory per PE.
    pub private_host: u64,
    /// Observability level of the machine's [`obs::Recorder`]:
    /// `Off` (default — allocation-free hot path), `Counters`
    /// (latency histograms + hardware utilization), or `Spans`
    /// (everything, exportable as a Chrome trace). [`RuntimeConfig::tuned`]
    /// reads the `GDR_SHMEM_OBS` environment variable.
    pub obs_level: obs::ObsLevel,
    /// Span-sampling factor: op-correlated span data (op spans, decision
    /// records, flow events, chunk spans) is recorded for 1 in N ops per
    /// PE, deterministically by op sequence number. Histograms and
    /// utilization counters stay exact regardless. 1 records everything;
    /// [`RuntimeConfig::tuned`] reads `GDR_SHMEM_OBS_SAMPLE`.
    pub obs_sample: u64,
    /// Width of the windowed metrics plane's virtual-time windows, in
    /// microseconds; `0` (the default) leaves the plane off. At
    /// `Counters`+ the recorder rolls latency sketches, link
    /// utilization and fault/health tallies per window and exports a
    /// `window-snapshot` record at each window close.
    /// [`RuntimeConfig::tuned`] reads `GDR_SHMEM_OBS_WINDOW_US`.
    pub obs_window_us: u32,
    /// Feed SLO watchdog violations into the health breaker: every
    /// violation with a resolvable protocol counts as a failure draw on
    /// that protocol's breaker on every node (the first step toward
    /// online policy). [`RuntimeConfig::tuned`] reads
    /// `GDR_SHMEM_OBS_SLO_DEMOTE`.
    pub slo_demote: bool,
    /// Deterministic fault plan (transient CQE errors, link windows,
    /// proxy stalls, GDR capability faults — see [`faults::FaultPlan`]).
    /// Inactive by default; [`RuntimeConfig::tuned`] reads the
    /// `GDR_SHMEM_FAULTS` environment variable (see `docs/FAULTS.md`).
    pub faults: faults::FaultPlan,
    /// Quiesce watchdog deadline in virtual nanoseconds: the engine-level
    /// bound on any single completion wait. `0` (the default) leaves the
    /// watchdog off and keeps the unfaulted event order byte-identical;
    /// when set, a wait that outlives the deadline resolves as a typed
    /// [`crate::TransferError::Timeout`] carrying a blocked-task dump
    /// instead of wedging virtual time. The per-op `faults` timeout
    /// (`op_timeout_ns`), when non-zero, takes precedence.
    /// [`RuntimeConfig::tuned`] reads `GDR_SHMEM_QUIESCE_NS`.
    pub quiesce_ns: u64,
    /// True when the threshold values came from a `thresholds-v1`
    /// artifact ([`RuntimeConfig::with_threshold_table`] or the
    /// `GDR_SHMEM_THRESHOLDS` environment variable) rather than the
    /// compiled-in tuned table. Surfaced in decision records as the
    /// threshold provenance (`tsource`).
    pub thresholds_loaded: bool,
}

impl RuntimeConfig {
    /// Tuned configuration for the Wilkes-like profile.
    pub fn tuned(design: Design) -> Self {
        let cfg = RuntimeConfig {
            design,
            host_heap: 8 << 20,
            gpu_heap: 8 << 20,
            staging: 4 << 20,
            loopback_put_limit: 4 << 10,
            loopback_get_limit: 1 << 10,
            loopback_dd_limit: 2 << 10,
            gdr_put_limit: 32 << 10,
            gdr_get_limit: 16 << 10,
            pipeline_chunk: 512 << 10,
            proxy_enabled: true,
            proxy_get_min: 512 << 10,
            poll_interval_ns: 200,
            service_thread: false,
            service_poll_ns: 2_000,
            dev_mem: 64 << 20,
            private_host: 32 << 20,
            obs_level: obs::ObsLevel::from_env(),
            obs_sample: obs_sample_from_env(),
            obs_window_us: obs_window_from_env(),
            slo_demote: env_flag("GDR_SHMEM_OBS_SLO_DEMOTE"),
            faults: faults::FaultPlan::from_env().unwrap_or_default(),
            quiesce_ns: quiesce_from_env(),
            thresholds_loaded: false,
        };
        match thresholds_from_env() {
            Ok(Some(table)) => cfg
                .with_threshold_table(&table)
                .expect("GDR_SHMEM_THRESHOLDS: table validated on parse"),
            Ok(None) => cfg,
            // fail loud: a mistyped threshold file silently ignored would
            // invalidate every measurement taken under it
            Err(e) => panic!("GDR_SHMEM_THRESHOLDS: {e}"),
        }
    }

    /// Overlay a validated [`obs::ThresholdTable`] onto this config:
    /// named entries replace the corresponding tuned constants, absent
    /// names keep their defaults. Marks the config as externally tuned
    /// (decision records report `tsource: "thresholds-v1"`).
    pub fn with_threshold_table(mut self, t: &obs::ThresholdTable) -> Result<Self, String> {
        for (name, value) in t.iter() {
            match name {
                "loopback_put_limit" => self.loopback_put_limit = value,
                "loopback_get_limit" => self.loopback_get_limit = value,
                "loopback_dd_limit" => self.loopback_dd_limit = value,
                "gdr_put_limit" => self.gdr_put_limit = value,
                "gdr_get_limit" => self.gdr_get_limit = value,
                "proxy_get_min" => self.proxy_get_min = value,
                other => return Err(format!("unknown threshold {other:?}")),
            }
        }
        self.thresholds_loaded = true;
        Ok(self)
    }

    pub fn with_heaps(mut self, host: u64, gpu: u64) -> Self {
        self.host_heap = host;
        self.gpu_heap = gpu;
        self
    }

    /// Set the observability level (overrides `GDR_SHMEM_OBS`).
    pub fn with_obs(mut self, level: obs::ObsLevel) -> Self {
        self.obs_level = level;
        self
    }

    /// Set the span-sampling factor (overrides `GDR_SHMEM_OBS_SAMPLE`).
    pub fn with_obs_sample(mut self, n: u64) -> Self {
        self.obs_sample = n.max(1);
        self
    }

    /// Set the metrics window width in virtual microseconds (overrides
    /// `GDR_SHMEM_OBS_WINDOW_US`); `0` turns the windowed plane off.
    pub fn with_obs_window(mut self, us: u32) -> Self {
        self.obs_window_us = us;
        self
    }

    /// Feed SLO violations into the health breaker (overrides
    /// `GDR_SHMEM_OBS_SLO_DEMOTE`).
    pub fn with_slo_demote(mut self, on: bool) -> Self {
        self.slo_demote = on;
        self
    }

    /// Install a fault plan (overrides `GDR_SHMEM_FAULTS`).
    pub fn with_faults(mut self, plan: faults::FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Arm the quiesce watchdog (overrides `GDR_SHMEM_QUIESCE_NS`);
    /// `0` turns it off.
    pub fn with_quiesce_ns(mut self, ns: u64) -> Self {
        self.quiesce_ns = ns;
        self
    }
}

/// Read a `thresholds-v1` artifact from the path in
/// `GDR_SHMEM_THRESHOLDS`, if set. Unreadable files and invalid tables
/// are hard errors — see the fail-loud note at the call site.
fn thresholds_from_env() -> Result<Option<obs::ThresholdTable>, String> {
    let Some(path) = std::env::var_os("GDR_SHMEM_THRESHOLDS") else {
        return Ok(None);
    };
    let path = std::path::PathBuf::from(path);
    let doc = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    obs::ThresholdTable::from_json_str(&doc)
        .map(Some)
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Read `GDR_SHMEM_OBS_SAMPLE`; unset, unparsable or zero means 1
/// (record every op).
fn obs_sample_from_env() -> u64 {
    std::env::var("GDR_SHMEM_OBS_SAMPLE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Read `GDR_SHMEM_OBS_WINDOW_US`; unset, unparsable or zero means 0
/// (windowed plane off).
fn obs_window_from_env() -> u32 {
    std::env::var("GDR_SHMEM_OBS_WINDOW_US")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(0)
}

/// Read `GDR_SHMEM_QUIESCE_NS`; unset, unparsable or zero means 0
/// (quiesce watchdog off).
fn quiesce_from_env() -> u64 {
    std::env::var("GDR_SHMEM_QUIESCE_NS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
}

/// Boolean env switch: `1` / `true` / `yes` / `on` (case-insensitive).
fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "yes" | "on"))
        .unwrap_or(false)
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::tuned(Design::EnhancedGdr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_enhanced_gdr() {
        let c = RuntimeConfig::default();
        assert_eq!(c.design, Design::EnhancedGdr);
        assert!(c.loopback_put_limit > c.loopback_get_limit);
        assert!(c.gdr_put_limit > c.gdr_get_limit);
    }

    #[test]
    fn threshold_table_overlays_named_entries_only() {
        let base = RuntimeConfig::tuned(Design::EnhancedGdr);
        assert!(!base.thresholds_loaded);
        let t = obs::ThresholdTable::from_json_str(
            r#"{"schema":"thresholds-v1","entries":{"gdr_put_limit":65536,"proxy_get_min":262144}}"#,
        )
        .unwrap();
        let c = base.with_threshold_table(&t).unwrap();
        assert!(c.thresholds_loaded);
        assert_eq!(c.gdr_put_limit, 65536);
        assert_eq!(c.proxy_get_min, 262144);
        // untouched entries keep the tuned defaults
        assert_eq!(c.gdr_get_limit, base.gdr_get_limit);
        assert_eq!(c.loopback_put_limit, base.loopback_put_limit);
    }

    #[test]
    fn design_names() {
        assert_eq!(Design::Naive.name(), "Naive");
        assert_eq!(Design::HostPipeline.name(), "Host-Pipeline");
        assert_eq!(Design::EnhancedGdr.name(), "Enhanced-GDR");
    }
}
