//! Symmetric addressing: domains and symmetric addresses.
//!
//! A [`SymAddr`] names the same logical object in every PE's symmetric
//! heap, exactly as an OpenSHMEM symmetric pointer does: passing a local
//! symmetric address plus a target PE to `put`/`get` addresses the
//! target's copy. The [`Domain`] is the paper's extension — symmetric
//! heaps exist on both the host and the GPU, selected at `shmalloc` time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::marker::PhantomData;

/// Where a symmetric allocation lives (paper §III-A: `shmalloc(size, domain)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Domain {
    /// The per-PE host symmetric heap (placed in the node's shared
    /// segment, so node-local peers can `shmem_ptr` into it).
    Host,
    /// The per-PE symmetric heap in GPU device memory.
    Gpu,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Host => write!(f, "host"),
            Domain::Gpu => write!(f, "gpu"),
        }
    }
}

/// A symmetric address: domain + byte offset within that domain's heap.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct SymAddr {
    pub domain: Domain,
    pub offset: u64,
}

impl SymAddr {
    pub fn new(domain: Domain, offset: u64) -> Self {
        SymAddr { domain, offset }
    }

    /// Address `bytes` further into the same allocation.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> Self {
        SymAddr {
            domain: self.domain,
            offset: self.offset + bytes,
        }
    }

    pub fn is_gpu(self) -> bool {
        self.domain == Domain::Gpu
    }
}

impl fmt::Display for SymAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym[{}+{:#x}]", self.domain, self.offset)
    }
}

/// A typed view over a symmetric allocation of `n` elements of `T`.
///
/// `T` must be plain-old-data (we only support the fixed-width number
/// types used by the OpenSHMEM typed API).
#[derive(Clone, Copy, Debug)]
pub struct SymSlice<T> {
    base: SymAddr,
    len: usize,
    _t: PhantomData<T>,
}

/// Sealed helper for plain-old-data element types.
pub trait Pod: Copy + Default + 'static {
    fn to_bytes(v: &[Self]) -> Vec<u8>;
    fn from_bytes(b: &[u8]) -> Vec<Self>;
    const SIZE: usize;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn to_bytes(v: &[Self]) -> Vec<u8> {
                v.iter().flat_map(|x| x.to_le_bytes()).collect()
            }
            fn from_bytes(b: &[u8]) -> Vec<Self> {
                b.chunks_exact(Self::SIZE)
                    .map(|c| <$t>::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            }
        }
    )*};
}

impl_pod!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl<T: Pod> SymSlice<T> {
    pub fn new(base: SymAddr, len: usize) -> Self {
        SymSlice {
            base,
            len,
            _t: PhantomData,
        }
    }

    pub fn addr(&self) -> SymAddr {
        self.base
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn byte_len(&self) -> u64 {
        (self.len * T::SIZE) as u64
    }

    /// Subslice of `count` elements starting at element `at`.
    pub fn slice(&self, at: usize, count: usize) -> SymSlice<T> {
        assert!(at + count <= self.len, "subslice out of range");
        SymSlice::new(self.base.add((at * T::SIZE) as u64), count)
    }

    /// Address of element `i`.
    pub fn at(&self, i: usize) -> SymAddr {
        assert!(i < self.len, "index out of range");
        self.base.add((i * T::SIZE) as u64)
    }

    pub fn domain(&self) -> Domain {
        self.base.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_addr_arithmetic() {
        let a = SymAddr::new(Domain::Gpu, 0x100);
        assert!(a.is_gpu());
        assert_eq!(a.add(8).offset, 0x108);
        assert_eq!(format!("{a}"), "sym[gpu+0x100]");
    }

    #[test]
    fn typed_slice_geometry() {
        let s: SymSlice<f64> = SymSlice::new(SymAddr::new(Domain::Host, 64), 100);
        assert_eq!(s.byte_len(), 800);
        assert_eq!(s.at(3).offset, 64 + 24);
        let sub = s.slice(10, 5);
        assert_eq!(sub.addr().offset, 64 + 80);
        assert_eq!(sub.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subslice_bounds_checked() {
        let s: SymSlice<u32> = SymSlice::new(SymAddr::new(Domain::Host, 0), 4);
        s.slice(2, 3);
    }

    #[test]
    fn pod_round_trip() {
        let v = vec![1.5f64, -2.25, 3.0];
        let b = f64::to_bytes(&v);
        assert_eq!(b.len(), 24);
        assert_eq!(f64::from_bytes(&b), v);
        let u = vec![0xDEADBEEFu32, 7];
        assert_eq!(u32::from_bytes(&u32::to_bytes(&u)), u);
    }
}
