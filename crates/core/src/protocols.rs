//! Protocol dispatch: the design tables of paper §III.
//!
//! `do_put` / `do_get` / `do_atomic` route every operation to a concrete
//! protocol based on the active [`Design`](crate::config::Design), the
//! endpoint domains (H/D), locality (intra-/inter-node), the message
//! size thresholds, and the GPU↔HCA socket relation.

use crate::addr::SymAddr;
use crate::config::{Design, RuntimeConfig};
use crate::error::TransferError;
use crate::machine::{OpToken, ShmemMachine};
use crate::state::Protocol;
use ib_sim::{AtomicOp, Rkey};
use obs::{Cands, Thresholds};
use pcie_sim::mem::{MemRef, MemSpace};
use pcie_sim::ProcId;
use sim_core::{Completion, SimDuration, TaskCtx};
use std::sync::Arc;

/// The candidate protocols and threshold values the **put** dispatch
/// consults for one (locality × domains) cell of the design table —
/// the decision-record side of [`ShmemMachine::do_put`]. Only runs when
/// span recording is on; must mirror the dispatch below.
fn put_alts(
    cfg: &RuntimeConfig,
    self_op: bool,
    same_node: bool,
    src_dev: bool,
    dst_dev: bool,
    c: &mut Cands,
    t: &mut Thresholds,
) {
    use Protocol::*;
    if self_op {
        c.push((if src_dev || dst_dev { IpcCopy } else { ShmCopy }).name());
        return;
    }
    match cfg.design {
        Design::Naive => c.push((if same_node { ShmCopy } else { HostRdma }).name()),
        Design::HostPipeline => match (same_node, src_dev, dst_dev) {
            (true, false, false) => c.push(ShmCopy.name()),
            (true, true, false) => c.push(TwoCopyStaged.name()),
            (true, _, true) => c.push(IpcCopy.name()),
            (false, false, false) => c.push(HostRdma.name()),
            (false, _, _) => c.push(HostPipelineStaged.name()),
        },
        Design::EnhancedGdr => {
            if same_node {
                if !src_dev && !dst_dev {
                    c.push(ShmCopy.name());
                } else {
                    c.push(LoopbackGdr.name());
                    c.push(IpcCopy.name());
                    t.push("loopback_put_limit", cfg.loopback_put_limit);
                    if src_dev && dst_dev {
                        t.push("loopback_dd_limit", cfg.loopback_dd_limit);
                    }
                }
            } else if !src_dev && !dst_dev {
                c.push(HostRdma.name());
            } else {
                c.push(DirectGdr.name());
                c.push(PipelineGdrWrite.name());
                c.push(ProxyPipeline.name());
                t.push("gdr_put_limit", cfg.gdr_put_limit);
            }
        }
    }
}

/// As [`put_alts`], for the **get** dispatch.
fn get_alts(
    cfg: &RuntimeConfig,
    self_op: bool,
    same_node: bool,
    src_dev: bool,
    dst_dev: bool,
    c: &mut Cands,
    t: &mut Thresholds,
) {
    use Protocol::*;
    if self_op {
        c.push((if src_dev || dst_dev { IpcCopy } else { ShmCopy }).name());
        return;
    }
    match cfg.design {
        Design::Naive => c.push((if same_node { ShmCopy } else { HostRdma }).name()),
        Design::HostPipeline => match (same_node, src_dev, dst_dev) {
            (true, false, false) => c.push(ShmCopy.name()),
            (true, true, false) => c.push(TwoCopyStaged.name()),
            (true, _, _) => c.push(IpcCopy.name()),
            (false, false, false) => c.push(HostRdma.name()),
            (false, _, _) => c.push(HostPipelineStaged.name()),
        },
        Design::EnhancedGdr => {
            if same_node {
                if !src_dev && !dst_dev {
                    c.push(ShmCopy.name());
                } else {
                    c.push(LoopbackGdr.name());
                    c.push(IpcCopy.name());
                    t.push("loopback_get_limit", cfg.loopback_get_limit);
                }
            } else if !src_dev {
                c.push((if dst_dev { DirectGdr } else { HostRdma }).name());
            } else {
                c.push(DirectGdr.name());
                c.push(ProxyPipeline.name());
                t.push("gdr_get_limit", cfg.gdr_get_limit);
                t.push("proxy_get_min", cfg.proxy_get_min);
            }
        }
    }
}

/// Flush outstanding one-sided ops of `me` (the quiet loop, callable
/// from machine context). Enters the library and drains pending work
/// first — blocking here without the in-library flag would stop the
/// target-side progress engine and deadlock symmetric exchanges.
fn ctx_quiet(m: &Arc<ShmemMachine>, ctx: &TaskCtx, me: ProcId) {
    let st = m.pe_state(me);
    st.enter_library();
    m.drain_pending(ctx, me);
    loop {
        let list: Vec<_> = std::mem::take(&mut *st.outstanding.lock());
        if list.is_empty() {
            break;
        }
        for c in list {
            ctx.wait_threshold(&c, 1);
        }
    }
    st.leave_library();
}

impl ShmemMachine {
    // ---------- small shared helpers ----------

    /// Make sure `mem` is usable as a local RDMA buffer for `pe`: either
    /// it is covered by an existing MR (symmetric heaps, staging, or a
    /// previous on-demand registration — the registration *cache* hit) or
    /// it gets registered now, paying the cold cost.
    pub(crate) fn ensure_registered(self: &Arc<Self>, ctx: &TaskCtx, pe: ProcId, mem: MemRef, len: u64) {
        if self.ib().mrs().check_local(pe, mem, len).is_ok() {
            return; // cache hit: free
        }
        // Register whole megabyte granules around the access so nearby
        // buffers hit the cache (as production registration caches do —
        // per-request registration would make every new chunk pay the
        // ~30us cold cost).
        const GRANULE: u64 = 1 << 20;
        let base = mem.offset / GRANULE * GRANULE;
        let end = (mem.offset + len).div_ceil(GRANULE) * GRANULE;
        let arena = self
            .cluster()
            .mem()
            .get(mem.space)
            .expect("registering unmapped space");
        let end = end.min(arena.size());
        self.ib()
            .reg_mr(ctx, pe, MemRef::new(mem.space, base), end - base);
    }

    /// Post a work request with bounded retry under the fault plan.
    /// Each injected transient CQE error costs the detection latency,
    /// then an exponentially growing, seeded-jittered backoff before
    /// the repost; exhausting `max_retries` surfaces a typed error.
    /// With no active plan this is exactly one `post()` call.
    pub(crate) fn post_with_retry<T>(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        proto: Protocol,
        token: OpToken,
        mut post: impl FnMut() -> Result<T, ib_sim::MrError>,
    ) -> Result<T, TransferError> {
        let plan = self.cfg().faults;
        let mut attempt: u32 = 0;
        loop {
            if let Some(f) = self.ib().inject_transient_cqe(me, ctx.now()) {
                self.obs_fault(me, ctx.now(), f.kind, proto.name(), token);
                self.health_on_failure(me, ctx.now(), proto, token);
                ctx.advance(f.detect);
                if attempt >= plan.max_retries {
                    self.obs().fault_tally_at("exhausted", proto.name(), ctx.now());
                    return Err(TransferError::RetriesExhausted {
                        kind: f.kind,
                        attempts: attempt + 1,
                    });
                }
                let backoff = plan.backoff_ns(token.id, attempt);
                self.obs_retry(me, ctx.now(), proto.name(), attempt + 1, backoff, token);
                ctx.advance(SimDuration::from_ns(backoff));
                attempt += 1;
                continue;
            }
            let out = post().map_err(TransferError::Mr)?;
            self.health_on_success(me, ctx.now(), proto, token);
            if attempt > 0 {
                self.obs().fault_tally_at("recovered", proto.name(), ctx.now());
            }
            return Ok(out);
        }
    }

    /// Wait until `comp` reaches `threshold`, bounded by the fault
    /// plan's per-op virtual-time timeout or — when the plan sets none —
    /// the config's quiesce-watchdog deadline (unbounded when both are
    /// zero). On timeout the completion stays outstanding: the op is
    /// poisoned and reported as a typed error carrying the stuck op's
    /// token, protocol and the engine's blocked-task dump, instead of
    /// hanging the simulation forever.
    pub(crate) fn wait_with_timeout(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        comp: &Completion,
        threshold: u64,
        token: OpToken,
        proto: Protocol,
    ) -> Result<(), TransferError> {
        let plan_ns = self.cfg().faults.op_timeout_ns;
        let timeout_ns = if plan_ns > 0 { plan_ns } else { self.cfg().quiesce_ns };
        match ctx.wait_threshold_deadline(comp, threshold, SimDuration::from_ns(timeout_ns)) {
            Ok(()) => Ok(()),
            Err(dump) => {
                self.obs().fault_tally_at("timeout", proto.name(), ctx.now());
                Err(TransferError::Timeout {
                    after_ns: timeout_ns,
                    diag: format!(
                        "op {:#x} ({}) stuck at completion>={threshold} \
                         (have {} of {threshold})\n{dump}",
                        token.id,
                        proto.name(),
                        comp.peek(),
                    ),
                })
            }
        }
    }

    /// Node-local CPU copy through the shared segment (or private host
    /// memory): the `shmem_ptr` fast path. Synchronous.
    pub(crate) fn shm_copy(self: &Arc<Self>, ctx: &TaskCtx, src: MemRef, dst: MemRef, len: u64) {
        let hw = self.cluster().hw();
        ctx.advance(hw.host.memcpy_overhead + SimDuration::for_bytes(len, hw.host.memcpy_bw));
        self.cluster()
            .mem()
            .copy(src, dst, len)
            .expect("shm copy endpoints");
    }

    /// One synchronous CUDA copy (IPC paths, any H/D combination).
    pub(crate) fn cuda_copy(self: &Arc<Self>, ctx: &TaskCtx, src: MemRef, dst: MemRef, len: u64) {
        self.gpus().memcpy_sync(ctx, src, dst, len);
    }

    /// RDMA put: post, wait *local* completion (source reusable), track
    /// the remote completion for `quiet`. The truly one-sided puts.
    /// Transient CQE faults are retried; timeouts and exhausted retries
    /// surface as typed errors.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rdma_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        src: MemRef,
        rkey: Rkey,
        dst: MemRef,
        len: u64,
        target: ProcId,
        token: OpToken,
        proto: Protocol,
    ) -> Result<(), TransferError> {
        self.rdma_put_inner(ctx, me, src, rkey, dst, len, false, target, token, proto)
    }

    /// As [`ShmemMachine::rdma_put`]; with `nbi` the call returns right
    /// after posting (`shmem_putmem_nbi` semantics: the source buffer is
    /// not reusable until `quiet`). The op's flow ends on the *target's*
    /// track at remote completion — the one-sided delivery point.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rdma_put_inner(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        src: MemRef,
        rkey: Rkey,
        dst: MemRef,
        len: u64,
        nbi: bool,
        target: ProcId,
        token: OpToken,
        proto: Protocol,
    ) -> Result<(), TransferError> {
        self.ensure_registered(ctx, me, src, len);
        let comp = self.post_with_retry(ctx, me, proto, token, || {
            self.ib().post_rdma_write(ctx, me, src, rkey, dst, len)
        })?;
        if nbi {
            self.pe_state(me).track(comp.local);
        } else {
            self.wait_with_timeout(ctx, &comp.local, 1, token, proto)?;
        }
        self.flow_end_on(ctx, &comp.remote, 1, self.pe_track(target), token);
        self.pe_state(me).track(comp.remote);
        Ok(())
    }

    /// `shmem_putmem_nbi`: non-blocking put. RDMA-serviced paths return
    /// right after the post; copy/pipeline paths retain their protocol's
    /// natural local-completion point (as real implementations do).
    /// `quiet` completes everything.
    pub(crate) fn do_put_nbi(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dest: crate::addr::SymAddr,
        src: MemRef,
        len: u64,
        target: ProcId,
    ) -> Result<(), TransferError> {
        if len == 0 {
            // zero-byte ops land in size-class 0 so quiet-only windows
            // still show up in the histograms
            self.obs().latency("put-nbi", 0, SimDuration::ZERO);
            return Ok(());
        }
        self.peer_gate(ctx, me, target)?;
        let dst = self.layout().resolve(dest, target);
        let rkey = self.layout().rkey(dest.domain, target);
        let same_node = self.cluster().topo().same_node(me, target);
        // the nbi fast path covers every RDMA-serviced configuration of
        // the Enhanced-GDR design; everything else behaves like put
        if self.put_rdma_serviced(me, target, src, dst, len) {
            let t0 = ctx.now();
            let token = self.next_op(me);
            let st = self.pe_state(me);
            st.enter_library();
            self.drain_pending(ctx, me);
            {
                let mut s = st.stats.lock();
                s.puts += 1;
                s.bytes_put += len;
            }
            let chosen = if same_node {
                Protocol::LoopbackGdr
            } else if src.is_device() || dst.is_device() {
                Protocol::DirectGdr
            } else {
                Protocol::HostRdma
            };
            // half-open probe admission: the first op re-trying a
            // demoted direct path after cooldown is marked in the trace
            if chosen == Protocol::DirectGdr {
                let _ = self.health_avoid(me, t0, Protocol::DirectGdr, token);
            }
            if let Err(e) =
                self.rdma_put_inner(ctx, me, src, rkey, dst, len, true, target, token, chosen)
            {
                st.leave_library();
                return Err(e);
            }
            self.count(me, chosen);
            let cfg = *self.cfg();
            self.obs_op(
                "put-nbi",
                me,
                target,
                chosen,
                len,
                src.is_device(),
                dst.is_device(),
                same_node,
                self.put_socket_rel(src, dst, me, target),
                t0,
                ctx.now(),
                token,
                |c, t| put_alts(&cfg, false, same_node, src.is_device(), dst.is_device(), c, t),
            );
            st.leave_library();
            Ok(())
        } else {
            self.do_put(ctx, me, dest, src, len, target)
        }
    }

    /// `shmem_put_signal`: fused data + signal when the path is
    /// RDMA-serviced (Enhanced-GDR small/medium and H-H); otherwise the
    /// safe decomposition put + fence + flag put.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn do_put_signal(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dest: crate::addr::SymAddr,
        src: MemRef,
        len: u64,
        sig: crate::addr::SymAddr,
        sig_value: u64,
        target: ProcId,
    ) -> Result<(), TransferError> {
        assert_eq!(
            sig.domain,
            crate::addr::Domain::Host,
            "signals live in host symmetric memory (wait_until polls them)"
        );
        self.peer_gate(ctx, me, target)?;
        let dst = self.layout().resolve(dest, target);
        if self.put_rdma_serviced(me, target, src, dst, len) {
            let t0 = ctx.now();
            let token = self.next_op(me);
            let st = self.pe_state(me);
            st.enter_library();
            self.drain_pending(ctx, me);
            {
                let mut s = st.stats.lock();
                s.puts += 1;
                s.bytes_put += len;
            }
            if !self.cluster().topo().same_node(me, target) && (src.is_device() || dst.is_device())
            {
                let _ = self.health_avoid(me, t0, Protocol::DirectGdr, token);
            }
            self.ensure_registered(ctx, me, src, len);
            let rkey = self.layout().rkey(dest.domain, target);
            let sig_rkey = self.layout().rkey(crate::addr::Domain::Host, target);
            let sig_dst = self.layout().resolve(sig, target);
            let post_overhead = self.cluster().hw().ib.post_overhead;
            let posted = self.post_with_retry(ctx, me, Protocol::DirectGdr, token, || {
                ctx.advance(post_overhead);
                let comp = ib_sim::RdmaCompletion::new();
                ctx.with_sched(|s| {
                    self.ib().rdma_write_signal_start(
                        s, me, src, rkey, dst, len, sig_rkey, sig_dst, sig_value, &comp,
                    )
                })?;
                Ok(comp)
            });
            let comp = match posted {
                Ok(c) => c,
                Err(e) => {
                    st.leave_library();
                    return Err(e);
                }
            };
            if let Err(e) = self.wait_with_timeout(ctx, &comp.local, 1, token, Protocol::DirectGdr) {
                st.leave_library();
                return Err(e);
            }
            self.flow_end_on(ctx, &comp.remote, 1, self.pe_track(target), token);
            st.track(comp.remote);
            self.count(me, Protocol::DirectGdr);
            let same_node = self.cluster().topo().same_node(me, target);
            let cfg = *self.cfg();
            self.obs_op(
                "put-signal",
                me,
                target,
                Protocol::DirectGdr,
                len,
                src.is_device(),
                dst.is_device(),
                same_node,
                self.put_socket_rel(src, dst, me, target),
                t0,
                ctx.now(),
                token,
                |c, t| put_alts(&cfg, false, same_node, src.is_device(), dst.is_device(), c, t),
            );
            st.leave_library();
            Ok(())
        } else {
            // decomposition: deliver data, order, then raise the signal
            self.do_put(ctx, me, dest, src, len, target)?;
            ctx_quiet(self, ctx, me);
            let scratch = self.sync_scratch(me);
            self.cluster()
                .mem()
                .write_bytes(scratch, &sig_value.to_le_bytes())
                .expect("signal scratch");
            self.do_put(ctx, me, sig, scratch, 8, target)
        }
    }

    /// `shmem_getmem_nbi`: the RDMA read is posted and tracked; `quiet`
    /// guarantees local delivery.
    pub(crate) fn do_get_nbi(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        source: crate::addr::SymAddr,
        len: u64,
        from: ProcId,
    ) -> Result<(), TransferError> {
        if len == 0 {
            self.obs().latency("get-nbi", 0, SimDuration::ZERO);
            return Ok(());
        }
        self.peer_gate(ctx, me, from)?;
        let src = self.layout().resolve(source, from);
        let rkey = self.layout().rkey(source.domain, from);
        if self.get_rdma_serviced(me, from, src, dst, len) {
            let t0 = ctx.now();
            let token = self.next_op(me);
            let st = self.pe_state(me);
            st.enter_library();
            self.drain_pending(ctx, me);
            {
                let mut s = st.stats.lock();
                s.gets += 1;
                s.bytes_get += len;
            }
            if !self.cluster().topo().same_node(me, from) && (src.is_device() || dst.is_device()) {
                let _ = self.health_avoid(me, t0, Protocol::DirectGdr, token);
            }
            self.ensure_registered(ctx, me, dst, len);
            let posted = self.post_with_retry(ctx, me, Protocol::DirectGdr, token, || {
                self.ib().post_rdma_read(ctx, me, dst, rkey, src, len)
            });
            let done = match posted {
                Ok(d) => d,
                Err(e) => {
                    st.leave_library();
                    return Err(e);
                }
            };
            // a get completes locally: the flow ends on the origin track
            // when the read's data lands
            self.flow_end_on(ctx, &done, 1, self.pe_track(me), token);
            st.track(done);
            self.count(me, Protocol::DirectGdr);
            let same_node = self.cluster().topo().same_node(me, from);
            let cfg = *self.cfg();
            self.obs_op(
                "get-nbi",
                me,
                from,
                Protocol::DirectGdr,
                len,
                src.is_device(),
                dst.is_device(),
                same_node,
                self.get_socket_rel(src, dst, me, from),
                t0,
                ctx.now(),
                token,
                |c, t| get_alts(&cfg, false, same_node, src.is_device(), dst.is_device(), c, t),
            );
            st.leave_library();
            Ok(())
        } else {
            self.do_get(ctx, me, dst, source, len, from)
        }
    }

    /// RDMA get: blocking until data is locally available (or the
    /// fault plan's per-op timeout expires). Transient CQE faults are
    /// retried with backoff before the post goes through.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rdma_get(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        rkey: Rkey,
        src: MemRef,
        len: u64,
        token: OpToken,
        proto: Protocol,
    ) -> Result<(), TransferError> {
        self.ensure_registered(ctx, me, dst, len);
        let done = self.post_with_retry(ctx, me, proto, token, || {
            self.ib().post_rdma_read(ctx, me, dst, rkey, src, len)
        })?;
        self.wait_with_timeout(ctx, &done, 1, token, proto)
    }

    fn count(&self, me: ProcId, p: Protocol) {
        self.pe_state(me).stats.lock().count(p);
    }

    /// Is the GPU backing `mem` on the same socket as `pe`'s HCA?
    fn mem_gpu_intra_socket(&self, mem: MemRef, hca_owner: ProcId) -> bool {
        match mem.space {
            MemSpace::Device(g) => {
                let topo = self.cluster().topo();
                topo.gpu_hca_intra_socket(g, topo.hca_of(hca_owner))
            }
            _ => true,
        }
    }

    /// Human label of [`Self::mem_gpu_intra_socket`] for decision
    /// records: `"host"` when `mem` is not device memory.
    fn socket_rel_of(&self, mem: MemRef, hca_owner: ProcId) -> &'static str {
        match mem.space {
            MemSpace::Device(_) => {
                if self.mem_gpu_intra_socket(mem, hca_owner) {
                    "intra-socket"
                } else {
                    "inter-socket"
                }
            }
            _ => "host",
        }
    }

    /// Socket relation of a put-shaped transfer for decision records:
    /// the device end (destination first — the HCA DMA-writes into the
    /// target GPU) drives the P2P path of paper Table III.
    pub(crate) fn put_socket_rel(
        &self,
        src: MemRef,
        dst: MemRef,
        me: ProcId,
        target: ProcId,
    ) -> &'static str {
        if dst.is_device() {
            self.socket_rel_of(dst, target)
        } else {
            self.socket_rel_of(src, me)
        }
    }

    /// As [`Self::put_socket_rel`] for gets: the remote source GPU is
    /// the P2P *read* end, the local destination the write end.
    pub(crate) fn get_socket_rel(
        &self,
        src: MemRef,
        dst: MemRef,
        me: ProcId,
        from: ProcId,
    ) -> &'static str {
        if src.is_device() {
            self.socket_rel_of(src, from)
        } else {
            self.socket_rel_of(dst, me)
        }
    }

    /// Bounds-check a symmetric access against its heap: protects the
    /// staging/sync areas that sit after the host heap in the segment
    /// (an oversized put would otherwise silently corrupt them).
    pub(crate) fn check_sym_range(&self, sym: crate::addr::SymAddr, len: u64) {
        let heap = match sym.domain {
            crate::addr::Domain::Host => self.cfg().host_heap,
            crate::addr::Domain::Gpu => self.cfg().gpu_heap,
        };
        assert!(
            sym.offset.checked_add(len).is_some_and(|end| end <= heap),
            "symmetric access {sym}+{len} overruns the {} {} -byte heap",
            sym.domain,
            heap
        );
    }

    /// THE routing predicate: would `do_put` service this transfer with
    /// a single RDMA write under Enhanced-GDR? Non-blocking and fused
    /// (put_signal) fast paths key off this so they can never diverge
    /// from the blocking dispatch table.
    pub(crate) fn put_rdma_serviced(
        &self,
        me: ProcId,
        target: ProcId,
        src: MemRef,
        dst: MemRef,
        len: u64,
    ) -> bool {
        let cfg = *self.cfg();
        if cfg.design != Design::EnhancedGdr || me == target {
            return false;
        }
        // GDR capability fault (or the pair's direct/GDR fabric severed
        // by an asymmetric cut): device-touching transfers cannot be a
        // single RDMA write; the blocking dispatch picks the fallback.
        if (src.is_device() || dst.is_device())
            && (self.gdr_disabled_at(me)
                || self.gdr_disabled_at(target)
                || self.cut_now(me, target))
        {
            return false;
        }
        let same_node = self.cluster().topo().same_node(me, target);
        match (same_node, src.is_device(), dst.is_device()) {
            (true, false, false) => false, // shm copy
            (true, true, true) => len <= cfg.loopback_dd_limit.min(cfg.loopback_put_limit),
            (true, _, _) => len <= cfg.loopback_put_limit,
            (false, false, false) => true,
            (false, src_dev, dst_dev) => {
                // Health demotion routes direct GDR through the blocking
                // dispatch (which owns the fallback + probe admission).
                if self.health_demoted_now(me, Protocol::DirectGdr) {
                    return false;
                }
                let dst_intra = self.mem_gpu_intra_socket(dst, target);
                len <= cfg.gdr_put_limit || (!src_dev && dst_intra && dst_dev)
            }
        }
    }

    /// Mirror predicate for gets: serviced by a single RDMA read?
    pub(crate) fn get_rdma_serviced(
        &self,
        me: ProcId,
        from: ProcId,
        src: MemRef,
        dst: MemRef,
        len: u64,
    ) -> bool {
        let cfg = *self.cfg();
        if cfg.design != Design::EnhancedGdr || me == from {
            return false;
        }
        // GDR capability fault or pair cut: see put_rdma_serviced.
        if (src.is_device() || dst.is_device())
            && (self.gdr_disabled_at(me)
                || self.gdr_disabled_at(from)
                || self.cut_now(me, from))
        {
            return false;
        }
        let same_node = self.cluster().topo().same_node(me, from);
        if same_node {
            if !src.is_device() && !dst.is_device() {
                false // shm copy
            } else {
                len <= cfg.loopback_get_limit
            }
        } else if !src.is_device() {
            // a device destination means direct GDR — honour demotion
            !(dst.is_device() && self.health_demoted_now(me, Protocol::DirectGdr))
        } else {
            len <= cfg.gdr_get_limit && !self.health_demoted_now(me, Protocol::DirectGdr)
        }
    }

    // ---------- put ----------

    /// `shmem_putmem(dest, source, len, pe)`.
    pub(crate) fn do_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dest: SymAddr,
        src: MemRef,
        len: u64,
        target: ProcId,
    ) -> Result<(), TransferError> {
        if len == 0 {
            self.obs().latency("put", 0, SimDuration::ZERO);
            return Ok(());
        }
        self.peer_gate(ctx, me, target)?;
        let t0 = ctx.now();
        let token = self.next_op(me);
        let st = self.pe_state(me);
        st.enter_library();
        self.drain_pending(ctx, me);
        {
            let mut s = st.stats.lock();
            s.puts += 1;
            s.bytes_put += len;
        }
        self.check_sym_range(dest, len);
        let dst = self.layout().resolve(dest, target);
        let rkey = self.layout().rkey(dest.domain, target);
        let src_dev = src.is_device();
        let dst_dev = dst.is_device();
        let topo = self.cluster().topo();
        let same_node = topo.same_node(me, target);
        let cfg = *self.cfg();
        // Capability fault (GDR administratively dead at either end) or
        // reachability fault (the pair's direct/GDR fabric severed by an
        // asymmetric cut): every GDR protocol must re-route onto the
        // still-reachable proxy/host-staged paths.
        let cut = self.cut_now(me, target);
        if cut && (src_dev || dst_dev) {
            self.note_cut(me, target, ctx.now());
        }
        let gdr_off = (src_dev || dst_dev)
            && (self.gdr_disabled_at(me) || self.gdr_disabled_at(target) || cut);

        let routed = (|| -> Result<Protocol, TransferError> {
            Ok(if me == target {
                // self-put: a local copy
                if src_dev || dst_dev {
                    self.cuda_copy(ctx, src, dst, len);
                    Protocol::IpcCopy
                } else {
                    self.shm_copy(ctx, src, dst, len);
                    Protocol::ShmCopy
                }
            } else {
                match cfg.design {
                    Design::Naive => {
                        assert!(
                            !src_dev && !dst_dev,
                            "Naive design: GPU buffers must be staged manually with cudaMemcpy \
                             (put {} -> {dst})",
                            src
                        );
                        if same_node {
                            self.shm_copy(ctx, src, dst, len);
                            Protocol::ShmCopy
                        } else {
                            self.rdma_put(
                                ctx, me, src, rkey, dst, len, target, token,
                                Protocol::HostRdma,
                            )?;
                            Protocol::HostRdma
                        }
                    }
                    Design::HostPipeline => {
                        if same_node {
                            match (src_dev, dst_dev) {
                                (false, false) => {
                                    self.shm_copy(ctx, src, dst, len);
                                    Protocol::ShmCopy
                                }
                                // GPU destination: single IPC copy
                                (_, true) => {
                                    self.cuda_copy(ctx, src, dst, len);
                                    Protocol::IpcCopy
                                }
                                // D-H: the unoptimized inter-domain path — stage
                                // through own host memory, two copies.
                                (true, false) => {
                                    self.two_copy_staged(ctx, me, src, dst, len)?;
                                    Protocol::TwoCopyStaged
                                }
                            }
                        } else {
                            match (src_dev, dst_dev) {
                                (false, false) => {
                                    self.rdma_put(
                                        ctx, me, src, rkey, dst, len, target, token,
                                        Protocol::HostRdma,
                                    )?;
                                    Protocol::HostRdma
                                }
                                (true, true) => {
                                    self.host_pipeline_put(ctx, me, src, dst, len, target, token)?;
                                    Protocol::HostPipelineStaged
                                }
                                _ => panic!(
                                    "Host-Pipeline design does not support inter-node \
                                     H-D / D-H configurations (paper Table I)"
                                ),
                            }
                        }
                    }
                    Design::EnhancedGdr => {
                        if same_node {
                            match (src_dev, dst_dev) {
                                (false, false) => {
                                    self.shm_copy(ctx, src, dst, len);
                                    Protocol::ShmCopy
                                }
                                (_, true) => {
                                    // D-D pays P2P caps on both ends of the
                                    // loopback: use the least threshold (§III-B)
                                    let limit = if src_dev {
                                        cfg.loopback_dd_limit.min(cfg.loopback_put_limit)
                                    } else {
                                        cfg.loopback_put_limit
                                    };
                                    if len <= limit && gdr_off {
                                        // loopback is an HCA round trip through
                                        // GPU memory: fall back to one IPC copy
                                        self.obs_fallback(
                                            me,
                                            ctx.now(),
                                            "put",
                                            Protocol::LoopbackGdr.name(),
                                            Protocol::IpcCopy.name(),
                                            token,
                                        );
                                        self.cuda_copy(ctx, src, dst, len);
                                        Protocol::IpcCopy
                                    } else if len <= limit {
                                        self.rdma_put(
                                            ctx, me, src, rkey, dst, len, target, token,
                                            Protocol::LoopbackGdr,
                                        )?;
                                        Protocol::LoopbackGdr
                                    } else {
                                        self.cuda_copy(ctx, src, dst, len);
                                        Protocol::IpcCopy
                                    }
                                }
                                (true, false) => {
                                    if len <= cfg.loopback_put_limit && gdr_off {
                                        self.obs_fallback(
                                            me,
                                            ctx.now(),
                                            "put",
                                            Protocol::LoopbackGdr.name(),
                                            Protocol::IpcCopy.name(),
                                            token,
                                        );
                                        self.cuda_copy(ctx, src, dst, len);
                                        Protocol::IpcCopy
                                    } else if len <= cfg.loopback_put_limit {
                                        self.rdma_put(
                                            ctx, me, src, rkey, dst, len, target, token,
                                            Protocol::LoopbackGdr,
                                        )?;
                                        Protocol::LoopbackGdr
                                    } else {
                                        // shmem_ptr design (paper Fig. 3): one
                                        // cudaMemcpy D2H straight into the
                                        // target's host heap in the shared segment.
                                        self.cuda_copy(ctx, src, dst, len);
                                        Protocol::IpcCopy
                                    }
                                }
                            }
                        } else {
                            match (src_dev, dst_dev) {
                                (false, false) => {
                                    self.rdma_put(
                                        ctx, me, src, rkey, dst, len, target, token,
                                        Protocol::HostRdma,
                                    )?;
                                    Protocol::HostRdma
                                }
                                _ => {
                                    let dst_intra = self.mem_gpu_intra_socket(dst, target);
                                    let direct_ok =
                                        len <= cfg.gdr_put_limit || (!src_dev && dst_intra);
                                    // Health demotion: an op that would go
                                    // direct GDR takes the capability-fault
                                    // fallback while the breaker is open (a
                                    // lapsed cooldown admits it as the probe).
                                    let demoted = !gdr_off
                                        && direct_ok
                                        && self.health_avoid(
                                            me,
                                            ctx.now(),
                                            Protocol::DirectGdr,
                                            token,
                                        );
                                    if gdr_off || demoted {
                                        // No HCA<->GPU DMA at either end. The
                                        // proxy put (host RDMA + proxy-side
                                        // cudaMemcpy H2D) and the D2H-staged
                                        // pipeline with a host destination
                                        // never touch GDR: re-route there.
                                        if dst_dev {
                                            let from = if direct_ok {
                                                Protocol::DirectGdr
                                            } else if !dst_intra {
                                                Protocol::ProxyPipeline
                                            } else {
                                                Protocol::PipelineGdrWrite
                                            };
                                            if from != Protocol::ProxyPipeline {
                                                self.obs_fallback(
                                                    me,
                                                    ctx.now(),
                                                    "put",
                                                    from.name(),
                                                    Protocol::ProxyPipeline.name(),
                                                    token,
                                                );
                                            }
                                            self.proxy_put(ctx, me, src, dst, len, target, token)?;
                                            Protocol::ProxyPipeline
                                        } else {
                                            // D-H: chunked D2H staging + plain
                                            // host-to-host RDMA writes
                                            if direct_ok {
                                                self.obs_fallback(
                                                    me,
                                                    ctx.now(),
                                                    "put",
                                                    Protocol::DirectGdr.name(),
                                                    Protocol::PipelineGdrWrite.name(),
                                                    token,
                                                );
                                            }
                                            self.pipeline_gdr_put(
                                                ctx,
                                                me,
                                                src,
                                                dst,
                                                dest.domain,
                                                len,
                                                target,
                                                token,
                                            )?;
                                            Protocol::PipelineGdrWrite
                                        }
                                    } else if direct_ok {
                                        // Direct GDR (small/medium; host-source
                                        // with a clean write path: all sizes).
                                        self.rdma_put(
                                            ctx, me, src, rkey, dst, len, target, token,
                                            Protocol::DirectGdr,
                                        )?;
                                        Protocol::DirectGdr
                                    } else if dst_dev && !dst_intra {
                                        // P2P write bottleneck at the target:
                                        // stage into target host memory, proxy
                                        // performs the final H2D — still one-sided.
                                        self.proxy_put(ctx, me, src, dst, len, target, token)?;
                                        Protocol::ProxyPipeline
                                    } else {
                                        // Pipeline GDR write: chunked D2H staging
                                        // + GDR RDMA writes, truly one-sided.
                                        self.pipeline_gdr_put(
                                            ctx,
                                            me,
                                            src,
                                            dst,
                                            dest.domain,
                                            len,
                                            target,
                                            token,
                                        )?;
                                        Protocol::PipelineGdrWrite
                                    }
                                }
                            }
                        }
                    }
                }
            })
        })();
        let chosen = match routed {
            Ok(p) => p,
            Err(e) => {
                st.leave_library();
                return Err(e);
            }
        };
        self.count(me, chosen);
        self.obs_op(
            "put",
            me,
            target,
            chosen,
            len,
            src_dev,
            dst_dev,
            same_node,
            self.put_socket_rel(src, dst, me, target),
            t0,
            ctx.now(),
            token,
            |c, t| put_alts(&cfg, me == target, same_node, src_dev, dst_dev, c, t),
        );
        // Synchronous copy protocols deliver before returning, so the
        // flow ends right here; RDMA/pipeline paths attached their ends
        // to the remote completion inside the protocol.
        if matches!(
            chosen,
            Protocol::ShmCopy | Protocol::IpcCopy | Protocol::TwoCopyStaged
        ) {
            self.flow_end_at(self.pe_track(me), ctx.now(), token);
        }
        st.leave_library();
        Ok(())
    }

    // ---------- get ----------

    /// `shmem_getmem(dest_local, source_sym, len, pe)`.
    pub(crate) fn do_get(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        source: SymAddr,
        len: u64,
        from: ProcId,
    ) -> Result<(), TransferError> {
        if len == 0 {
            self.obs().latency("get", 0, SimDuration::ZERO);
            return Ok(());
        }
        self.peer_gate(ctx, me, from)?;
        let t0 = ctx.now();
        let token = self.next_op(me);
        let st = self.pe_state(me);
        st.enter_library();
        self.drain_pending(ctx, me);
        {
            let mut s = st.stats.lock();
            s.gets += 1;
            s.bytes_get += len;
        }
        self.check_sym_range(source, len);
        let src = self.layout().resolve(source, from);
        let rkey = self.layout().rkey(source.domain, from);
        let src_dev = src.is_device();
        let dst_dev = dst.is_device();
        let topo = self.cluster().topo();
        let same_node = topo.same_node(me, from);
        let cfg = *self.cfg();
        // GDR dead at either end, or the direct fabric toward the
        // source severed by a cut: reroute like a capability fault.
        let cut = self.cut_now(me, from);
        if cut && (src_dev || dst_dev) {
            self.note_cut(me, from, ctx.now());
        }
        let gdr_off = (src_dev || dst_dev)
            && (self.gdr_disabled_at(me) || self.gdr_disabled_at(from) || cut);

        let routed = (|| -> Result<Protocol, TransferError> {
            Ok(if me == from {
                if src_dev || dst_dev {
                    self.cuda_copy(ctx, src, dst, len);
                    Protocol::IpcCopy
                } else {
                    self.shm_copy(ctx, src, dst, len);
                    Protocol::ShmCopy
                }
            } else {
                match cfg.design {
                    Design::Naive => {
                        assert!(
                            !src_dev && !dst_dev,
                            "Naive design: GPU buffers must be staged manually with cudaMemcpy"
                        );
                        if same_node {
                            self.shm_copy(ctx, src, dst, len);
                            Protocol::ShmCopy
                        } else {
                            self.rdma_get(
                                ctx, me, dst, rkey, src, len, token,
                                Protocol::HostRdma,
                            )?;
                            Protocol::HostRdma
                        }
                    }
                    Design::HostPipeline => {
                        if same_node {
                            match (src_dev, dst_dev) {
                                (false, false) => {
                                    self.shm_copy(ctx, src, dst, len);
                                    Protocol::ShmCopy
                                }
                                // remote device -> local host: unoptimized
                                // inter-domain path, two copies through staging.
                                (true, false) => {
                                    self.two_copy_staged(ctx, me, src, dst, len)?;
                                    Protocol::TwoCopyStaged
                                }
                                // single IPC copy covers D-D and host->device
                                _ => {
                                    self.cuda_copy(ctx, src, dst, len);
                                    Protocol::IpcCopy
                                }
                            }
                        } else {
                            match (src_dev, dst_dev) {
                                (false, false) => {
                                    self.rdma_get(
                                        ctx, me, dst, rkey, src, len, token,
                                        Protocol::HostRdma,
                                    )?;
                                    Protocol::HostRdma
                                }
                                (true, true) => {
                                    self.host_pipeline_get(ctx, me, dst, src, len, from, token)?;
                                    Protocol::HostPipelineStaged
                                }
                                _ => panic!(
                                    "Host-Pipeline design does not support inter-node \
                                     H-D / D-H configurations (paper Table I)"
                                ),
                            }
                        }
                    }
                    Design::EnhancedGdr => {
                        if same_node {
                            if !src_dev && !dst_dev {
                                self.shm_copy(ctx, src, dst, len);
                                Protocol::ShmCopy
                            } else if len <= cfg.loopback_get_limit && gdr_off {
                                self.obs_fallback(
                                    me,
                                    ctx.now(),
                                    "get",
                                    Protocol::LoopbackGdr.name(),
                                    Protocol::IpcCopy.name(),
                                    token,
                                );
                                self.cuda_copy(ctx, src, dst, len);
                                Protocol::IpcCopy
                            } else if len <= cfg.loopback_get_limit {
                                self.rdma_get(
                                    ctx, me, dst, rkey, src, len, token,
                                    Protocol::LoopbackGdr,
                                )?;
                                Protocol::LoopbackGdr
                            } else {
                                // one direct CUDA copy (IPC-mapped peer / shared
                                // segment visible to cudaMemcpy)
                                self.cuda_copy(ctx, src, dst, len);
                                Protocol::IpcCopy
                            }
                        } else if !src_dev {
                            let demoted = dst_dev
                                && !gdr_off
                                && self.health_avoid(me, ctx.now(), Protocol::DirectGdr, token);
                            if dst_dev && (gdr_off || demoted) {
                                // local GDR scatter unavailable: plain host
                                // RDMA read into registered staging, finish
                                // with H2D cudaMemcpy chunks
                                self.obs_fallback(
                                    me,
                                    ctx.now(),
                                    "get",
                                    Protocol::DirectGdr.name(),
                                    Protocol::HostPipelineStaged.name(),
                                    token,
                                );
                                self.staged_gdr_off_get(
                                    ctx, me, dst, rkey, src, len, from, token, false,
                                )?;
                                Protocol::HostPipelineStaged
                            } else {
                                // remote host: direct RDMA read any size (the
                                // local scatter path is the strong P2P write
                                // direction)
                                let p = if dst_dev {
                                    Protocol::DirectGdr
                                } else {
                                    Protocol::HostRdma
                                };
                                self.rdma_get(ctx, me, dst, rkey, src, len, token, p)?;
                                p
                            }
                        } else {
                            let would_direct = len <= cfg.gdr_get_limit
                                || !cfg.proxy_enabled
                                || len < cfg.proxy_get_min;
                            let demoted = !gdr_off
                                && would_direct
                                && self.health_avoid(me, ctx.now(), Protocol::DirectGdr, token);
                            if gdr_off || demoted {
                                // remote GPU source with GDR dead (or direct
                                // GDR demoted): the remote proxy stages D2H
                                // on its node and host-RDMA-writes into my
                                // landing buffer; a device destination takes
                                // one extra local H2D copy.
                                let would = if would_direct {
                                    Protocol::DirectGdr
                                } else {
                                    Protocol::ProxyPipeline
                                };
                                if would != Protocol::ProxyPipeline || dst_dev {
                                    self.obs_fallback(
                                        me,
                                        ctx.now(),
                                        "get",
                                        would.name(),
                                        Protocol::ProxyPipeline.name(),
                                        token,
                                    );
                                }
                                if dst_dev {
                                    self.staged_gdr_off_get(
                                        ctx, me, dst, rkey, src, len, from, token, true,
                                    )?;
                                } else {
                                    self.proxy_get(ctx, me, dst, src, len, from, token)?;
                                }
                                Protocol::ProxyPipeline
                            } else if len <= cfg.gdr_get_limit {
                                self.rdma_get(
                                    ctx, me, dst, rkey, src, len, token,
                                    Protocol::DirectGdr,
                                )?;
                                Protocol::DirectGdr
                            } else if cfg.proxy_enabled && len >= cfg.proxy_get_min {
                                // large get from remote GPU memory: remote proxy
                                // runs the reverse pipeline, target PE never
                                // involved
                                self.proxy_get(ctx, me, dst, src, len, from, token)?;
                                Protocol::ProxyPipeline
                            } else {
                                // ablation fallback: chunked direct GDR reads,
                                // paying the P2P read bottleneck
                                self.chunked_direct_get(ctx, me, dst, rkey, src, len, token)?;
                                Protocol::DirectGdr
                            }
                        }
                    }
                }
            })
        })();
        let chosen = match routed {
            Ok(p) => p,
            Err(e) => {
                st.leave_library();
                return Err(e);
            }
        };
        self.count(me, chosen);
        self.obs_op(
            "get",
            me,
            from,
            chosen,
            len,
            src_dev,
            dst_dev,
            same_node,
            self.get_socket_rel(src, dst, me, from),
            t0,
            ctx.now(),
            token,
            |c, t| get_alts(&cfg, me == from, same_node, src_dev, dst_dev, c, t),
        );
        // Every blocking-get protocol returns only once the data is
        // locally delivered — that return is the op's completion.
        self.flow_end_at(self.pe_track(me), ctx.now(), token);
        st.leave_library();
        Ok(())
    }

    // ---------- atomic ----------

    /// 64-bit fetching atomic on symmetric memory.
    pub(crate) fn do_atomic(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        target_sym: SymAddr,
        target: ProcId,
        op: AtomicOp,
    ) -> Result<u64, TransferError> {
        self.peer_gate(ctx, me, target)?;
        let t0 = ctx.now();
        let token = self.next_op(me);
        let st = self.pe_state(me);
        st.enter_library();
        self.drain_pending(ctx, me);
        st.stats.lock().atomics += 1;
        if self.cfg().design != Design::EnhancedGdr && target_sym.is_gpu() {
            panic!(
                "{} design does not support atomics on GPU symmetric memory \
                 (GDR hardware atomics are an Enhanced-GDR feature)",
                self.cfg().design.name()
            );
        }
        if target_sym.is_gpu() && (self.gdr_disabled_at(target) || self.cut_now(me, target)) {
            // Without GDR (disabled, or this pair's direct lane severed
            // by a cut) the HCA cannot issue atomics against GPU
            // memory, and no software path preserves atomicity against
            // concurrent hardware atomics: a typed error, not a fallback.
            if self.cut_now(me, target) {
                self.note_cut(me, target, ctx.now());
            }
            st.leave_library();
            return Err(TransferError::CapabilityDisabled {
                what: "gdr-atomic",
                node: self.cluster().topo().node_of(target).0,
            });
        }
        let dst = self.layout().resolve(target_sym, target);
        let rkey = self.layout().rkey(target_sym.domain, target);
        let res = match self.post_with_retry(ctx, me, Protocol::HwAtomic, token, || {
            self.ib().post_atomic(ctx, me, rkey, dst, op)
        }) {
            Ok(r) => r,
            Err(e) => {
                st.leave_library();
                return Err(e);
            }
        };
        if let Err(e) = self.wait_with_timeout(ctx, &res.done, 1, token, Protocol::HwAtomic) {
            st.leave_library();
            return Err(e);
        }
        self.count(me, Protocol::HwAtomic);
        self.obs_op(
            "atomic",
            me,
            target,
            Protocol::HwAtomic,
            8,
            false,
            target_sym.is_gpu(),
            self.cluster().topo().same_node(me, target),
            self.socket_rel_of(dst, target),
            t0,
            ctx.now(),
            token,
            |c, _| c.push(Protocol::HwAtomic.name()),
        );
        // The atomic acted on the target's memory; end the flow there.
        self.flow_end_at(self.pe_track(target), ctx.now(), token);
        st.leave_library();
        Ok(res
            .value()
            .expect("atomic completion signaled but result slot empty"))
    }

    /// Capability fallback for gets when GDR is disabled: land the data
    /// in registered *host* staging (host-RDMA read or proxy pipeline —
    /// neither touches GDR), then finish with plain H2D cudaMemcpy.
    /// Loops in staging-capacity pieces so transfers larger than the
    /// staging arena still fit.
    #[allow(clippy::too_many_arguments)]
    fn staged_gdr_off_get(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        rkey: Rkey,
        src: MemRef,
        len: u64,
        from: ProcId,
        token: OpToken,
        via_proxy: bool,
    ) -> Result<(), TransferError> {
        let cap = self.cfg().staging;
        let mut done = 0u64;
        while done < len {
            let n = cap.min(len - done);
            let off = self.alloc_staging_blocking(ctx, me, n)?;
            let stg = self.layout().staging_base(me).add(off);
            let r = if via_proxy {
                self.proxy_get(ctx, me, stg, src.add(done), n, from, token)
            } else {
                self.rdma_get(
                    ctx,
                    me,
                    stg,
                    rkey,
                    src.add(done),
                    n,
                    token,
                    Protocol::HostPipelineStaged,
                )
            };
            if r.is_ok() {
                self.cuda_copy(ctx, stg, dst.add(done), n);
            }
            self.pe_state(me).staging_alloc.lock().free(off, n);
            r?;
            done += n;
        }
        Ok(())
    }

    /// The baseline's two-copy staged path (inter-domain intra-node):
    /// CUDA copy into own staging, then a second copy to the final spot.
    fn two_copy_staged(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        src: MemRef,
        dst: MemRef,
        len: u64,
    ) -> Result<(), TransferError> {
        let off = self.alloc_staging_blocking(ctx, me, len)?;
        let stg = self.layout().staging_base(me).add(off);
        // copy 1: into staging (CUDA if either end is a device)
        if src.is_device() {
            self.cuda_copy(ctx, src, stg, len);
        } else {
            self.shm_copy(ctx, src, stg, len);
        }
        // copy 2: staging to destination
        if dst.is_device() {
            self.cuda_copy(ctx, stg, dst, len);
        } else {
            self.shm_copy(ctx, stg, dst, len);
        }
        self.pe_state(me).staging_alloc.lock().free(off, len);
        Ok(())
    }
}
