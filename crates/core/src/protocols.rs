//! Protocol dispatch: the design tables of paper §III.
//!
//! `do_put` / `do_get` / `do_atomic` route every operation to a concrete
//! protocol based on the active [`Design`](crate::config::Design), the
//! endpoint domains (H/D), locality (intra-/inter-node), the message
//! size thresholds, and the GPU↔HCA socket relation.

use crate::addr::SymAddr;
use crate::config::{Design, RuntimeConfig};
use crate::machine::{OpToken, ShmemMachine};
use crate::state::Protocol;
use ib_sim::{AtomicOp, Rkey};
use obs::{Cands, Thresholds};
use pcie_sim::mem::{MemRef, MemSpace};
use pcie_sim::ProcId;
use sim_core::{SimDuration, TaskCtx};
use std::sync::Arc;

/// The candidate protocols and threshold values the **put** dispatch
/// consults for one (locality × domains) cell of the design table —
/// the decision-record side of [`ShmemMachine::do_put`]. Only runs when
/// span recording is on; must mirror the dispatch below.
fn put_alts(
    cfg: &RuntimeConfig,
    self_op: bool,
    same_node: bool,
    src_dev: bool,
    dst_dev: bool,
    c: &mut Cands,
    t: &mut Thresholds,
) {
    use Protocol::*;
    if self_op {
        c.push((if src_dev || dst_dev { IpcCopy } else { ShmCopy }).name());
        return;
    }
    match cfg.design {
        Design::Naive => c.push((if same_node { ShmCopy } else { HostRdma }).name()),
        Design::HostPipeline => match (same_node, src_dev, dst_dev) {
            (true, false, false) => c.push(ShmCopy.name()),
            (true, true, false) => c.push(TwoCopyStaged.name()),
            (true, _, true) => c.push(IpcCopy.name()),
            (false, false, false) => c.push(HostRdma.name()),
            (false, _, _) => c.push(HostPipelineStaged.name()),
        },
        Design::EnhancedGdr => {
            if same_node {
                if !src_dev && !dst_dev {
                    c.push(ShmCopy.name());
                } else {
                    c.push(LoopbackGdr.name());
                    c.push(IpcCopy.name());
                    t.push("loopback_put_limit", cfg.loopback_put_limit);
                    if src_dev && dst_dev {
                        t.push("loopback_dd_limit", cfg.loopback_dd_limit);
                    }
                }
            } else if !src_dev && !dst_dev {
                c.push(HostRdma.name());
            } else {
                c.push(DirectGdr.name());
                c.push(PipelineGdrWrite.name());
                c.push(ProxyPipeline.name());
                t.push("gdr_put_limit", cfg.gdr_put_limit);
            }
        }
    }
}

/// As [`put_alts`], for the **get** dispatch.
fn get_alts(
    cfg: &RuntimeConfig,
    self_op: bool,
    same_node: bool,
    src_dev: bool,
    dst_dev: bool,
    c: &mut Cands,
    t: &mut Thresholds,
) {
    use Protocol::*;
    if self_op {
        c.push((if src_dev || dst_dev { IpcCopy } else { ShmCopy }).name());
        return;
    }
    match cfg.design {
        Design::Naive => c.push((if same_node { ShmCopy } else { HostRdma }).name()),
        Design::HostPipeline => match (same_node, src_dev, dst_dev) {
            (true, false, false) => c.push(ShmCopy.name()),
            (true, true, false) => c.push(TwoCopyStaged.name()),
            (true, _, _) => c.push(IpcCopy.name()),
            (false, false, false) => c.push(HostRdma.name()),
            (false, _, _) => c.push(HostPipelineStaged.name()),
        },
        Design::EnhancedGdr => {
            if same_node {
                if !src_dev && !dst_dev {
                    c.push(ShmCopy.name());
                } else {
                    c.push(LoopbackGdr.name());
                    c.push(IpcCopy.name());
                    t.push("loopback_get_limit", cfg.loopback_get_limit);
                }
            } else if !src_dev {
                c.push((if dst_dev { DirectGdr } else { HostRdma }).name());
            } else {
                c.push(DirectGdr.name());
                c.push(ProxyPipeline.name());
                t.push("gdr_get_limit", cfg.gdr_get_limit);
                t.push("proxy_get_min", cfg.proxy_get_min);
            }
        }
    }
}

/// Flush outstanding one-sided ops of `me` (the quiet loop, callable
/// from machine context). Enters the library and drains pending work
/// first — blocking here without the in-library flag would stop the
/// target-side progress engine and deadlock symmetric exchanges.
fn ctx_quiet(m: &Arc<ShmemMachine>, ctx: &TaskCtx, me: ProcId) {
    let st = m.pe_state(me);
    st.enter_library();
    m.drain_pending(ctx, me);
    loop {
        let list: Vec<_> = std::mem::take(&mut *st.outstanding.lock());
        if list.is_empty() {
            break;
        }
        for c in list {
            ctx.wait_threshold(&c, 1);
        }
    }
    st.leave_library();
}

impl ShmemMachine {
    // ---------- small shared helpers ----------

    /// Make sure `mem` is usable as a local RDMA buffer for `pe`: either
    /// it is covered by an existing MR (symmetric heaps, staging, or a
    /// previous on-demand registration — the registration *cache* hit) or
    /// it gets registered now, paying the cold cost.
    pub(crate) fn ensure_registered(self: &Arc<Self>, ctx: &TaskCtx, pe: ProcId, mem: MemRef, len: u64) {
        if self.ib().mrs().check_local(pe, mem, len).is_ok() {
            return; // cache hit: free
        }
        // Register whole megabyte granules around the access so nearby
        // buffers hit the cache (as production registration caches do —
        // per-request registration would make every new chunk pay the
        // ~30us cold cost).
        const GRANULE: u64 = 1 << 20;
        let base = mem.offset / GRANULE * GRANULE;
        let end = (mem.offset + len).div_ceil(GRANULE) * GRANULE;
        let arena = self
            .cluster()
            .mem()
            .get(mem.space)
            .expect("registering unmapped space");
        let end = end.min(arena.size());
        self.ib()
            .reg_mr(ctx, pe, MemRef::new(mem.space, base), end - base);
    }

    /// Node-local CPU copy through the shared segment (or private host
    /// memory): the `shmem_ptr` fast path. Synchronous.
    pub(crate) fn shm_copy(self: &Arc<Self>, ctx: &TaskCtx, src: MemRef, dst: MemRef, len: u64) {
        let hw = self.cluster().hw();
        ctx.advance(hw.host.memcpy_overhead + SimDuration::for_bytes(len, hw.host.memcpy_bw));
        self.cluster()
            .mem()
            .copy(src, dst, len)
            .expect("shm copy endpoints");
    }

    /// One synchronous CUDA copy (IPC paths, any H/D combination).
    pub(crate) fn cuda_copy(self: &Arc<Self>, ctx: &TaskCtx, src: MemRef, dst: MemRef, len: u64) {
        self.gpus().memcpy_sync(ctx, src, dst, len);
    }

    /// RDMA put: post, wait *local* completion (source reusable), track
    /// the remote completion for `quiet`. The truly one-sided puts.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rdma_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        src: MemRef,
        rkey: Rkey,
        dst: MemRef,
        len: u64,
        target: ProcId,
        token: OpToken,
    ) {
        self.rdma_put_inner(ctx, me, src, rkey, dst, len, false, target, token)
    }

    /// As [`ShmemMachine::rdma_put`]; with `nbi` the call returns right
    /// after posting (`shmem_putmem_nbi` semantics: the source buffer is
    /// not reusable until `quiet`). The op's flow ends on the *target's*
    /// track at remote completion — the one-sided delivery point.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn rdma_put_inner(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        src: MemRef,
        rkey: Rkey,
        dst: MemRef,
        len: u64,
        nbi: bool,
        target: ProcId,
        token: OpToken,
    ) {
        self.ensure_registered(ctx, me, src, len);
        let comp = self
            .ib()
            .post_rdma_write(ctx, me, src, rkey, dst, len)
            .unwrap_or_else(|e| panic!("rdma put failed: {e}"));
        if nbi {
            self.pe_state(me).track(comp.local);
        } else {
            ctx.wait(&comp.local);
        }
        self.flow_end_on(ctx, &comp.remote, 1, self.pe_track(target), token);
        self.pe_state(me).track(comp.remote);
    }

    /// `shmem_putmem_nbi`: non-blocking put. RDMA-serviced paths return
    /// right after the post; copy/pipeline paths retain their protocol's
    /// natural local-completion point (as real implementations do).
    /// `quiet` completes everything.
    pub(crate) fn do_put_nbi(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dest: crate::addr::SymAddr,
        src: MemRef,
        len: u64,
        target: ProcId,
    ) {
        if len == 0 {
            // zero-byte ops land in size-class 0 so quiet-only windows
            // still show up in the histograms
            self.obs().latency("put-nbi", 0, SimDuration::ZERO);
            return;
        }
        let dst = self.layout().resolve(dest, target);
        let rkey = self.layout().rkey(dest.domain, target);
        let same_node = self.cluster().topo().same_node(me, target);
        // the nbi fast path covers every RDMA-serviced configuration of
        // the Enhanced-GDR design; everything else behaves like put
        if self.put_rdma_serviced(me, target, src, dst, len) {
            let t0 = ctx.now();
            let token = self.next_op(me);
            let st = self.pe_state(me);
            st.enter_library();
            self.drain_pending(ctx, me);
            {
                let mut s = st.stats.lock();
                s.puts += 1;
                s.bytes_put += len;
            }
            self.rdma_put_inner(ctx, me, src, rkey, dst, len, true, target, token);
            let chosen = if same_node {
                Protocol::LoopbackGdr
            } else if src.is_device() || dst.is_device() {
                Protocol::DirectGdr
            } else {
                Protocol::HostRdma
            };
            self.count(me, chosen);
            let cfg = *self.cfg();
            self.obs_op(
                "put-nbi",
                me,
                target,
                chosen,
                len,
                src.is_device(),
                dst.is_device(),
                same_node,
                t0,
                ctx.now(),
                token,
                |c, t| put_alts(&cfg, false, same_node, src.is_device(), dst.is_device(), c, t),
            );
            st.leave_library();
        } else {
            self.do_put(ctx, me, dest, src, len, target);
        }
    }

    /// `shmem_put_signal`: fused data + signal when the path is
    /// RDMA-serviced (Enhanced-GDR small/medium and H-H); otherwise the
    /// safe decomposition put + fence + flag put.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn do_put_signal(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dest: crate::addr::SymAddr,
        src: MemRef,
        len: u64,
        sig: crate::addr::SymAddr,
        sig_value: u64,
        target: ProcId,
    ) {
        assert_eq!(
            sig.domain,
            crate::addr::Domain::Host,
            "signals live in host symmetric memory (wait_until polls them)"
        );
        let dst = self.layout().resolve(dest, target);
        if self.put_rdma_serviced(me, target, src, dst, len) {
            let t0 = ctx.now();
            let token = self.next_op(me);
            let st = self.pe_state(me);
            st.enter_library();
            self.drain_pending(ctx, me);
            {
                let mut s = st.stats.lock();
                s.puts += 1;
                s.bytes_put += len;
            }
            self.ensure_registered(ctx, me, src, len);
            let rkey = self.layout().rkey(dest.domain, target);
            let sig_rkey = self.layout().rkey(crate::addr::Domain::Host, target);
            let sig_dst = self.layout().resolve(sig, target);
            ctx.advance(self.cluster().hw().ib.post_overhead);
            let comp = ib_sim::RdmaCompletion::new();
            ctx.with_sched(|s| {
                self.ib()
                    .rdma_write_signal_start(
                        s, me, src, rkey, dst, len, sig_rkey, sig_dst, sig_value, &comp,
                    )
                    .unwrap_or_else(|e| panic!("put_signal failed: {e}"));
            });
            ctx.wait(&comp.local);
            self.flow_end_on(ctx, &comp.remote, 1, self.pe_track(target), token);
            st.track(comp.remote);
            self.count(me, Protocol::DirectGdr);
            let same_node = self.cluster().topo().same_node(me, target);
            let cfg = *self.cfg();
            self.obs_op(
                "put-signal",
                me,
                target,
                Protocol::DirectGdr,
                len,
                src.is_device(),
                dst.is_device(),
                same_node,
                t0,
                ctx.now(),
                token,
                |c, t| put_alts(&cfg, false, same_node, src.is_device(), dst.is_device(), c, t),
            );
            st.leave_library();
        } else {
            // decomposition: deliver data, order, then raise the signal
            self.do_put(ctx, me, dest, src, len, target);
            ctx_quiet(self, ctx, me);
            let scratch = self.sync_scratch(me);
            self.cluster()
                .mem()
                .write_bytes(scratch, &sig_value.to_le_bytes())
                .expect("signal scratch");
            self.do_put(ctx, me, sig, scratch, 8, target);
        }
    }

    /// `shmem_getmem_nbi`: the RDMA read is posted and tracked; `quiet`
    /// guarantees local delivery.
    pub(crate) fn do_get_nbi(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        source: crate::addr::SymAddr,
        len: u64,
        from: ProcId,
    ) {
        if len == 0 {
            self.obs().latency("get-nbi", 0, SimDuration::ZERO);
            return;
        }
        let src = self.layout().resolve(source, from);
        let rkey = self.layout().rkey(source.domain, from);
        if self.get_rdma_serviced(me, from, src, dst, len) {
            let t0 = ctx.now();
            let token = self.next_op(me);
            let st = self.pe_state(me);
            st.enter_library();
            self.drain_pending(ctx, me);
            {
                let mut s = st.stats.lock();
                s.gets += 1;
                s.bytes_get += len;
            }
            self.ensure_registered(ctx, me, dst, len);
            let done = self
                .ib()
                .post_rdma_read(ctx, me, dst, rkey, src, len)
                .unwrap_or_else(|e| panic!("rdma get failed: {e}"));
            // a get completes locally: the flow ends on the origin track
            // when the read's data lands
            self.flow_end_on(ctx, &done, 1, self.pe_track(me), token);
            st.track(done);
            self.count(me, Protocol::DirectGdr);
            let same_node = self.cluster().topo().same_node(me, from);
            let cfg = *self.cfg();
            self.obs_op(
                "get-nbi",
                me,
                from,
                Protocol::DirectGdr,
                len,
                src.is_device(),
                dst.is_device(),
                same_node,
                t0,
                ctx.now(),
                token,
                |c, t| get_alts(&cfg, false, same_node, src.is_device(), dst.is_device(), c, t),
            );
            st.leave_library();
        } else {
            self.do_get(ctx, me, dst, source, len, from);
        }
    }

    /// RDMA get: blocking until data is locally available.
    pub(crate) fn rdma_get(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        rkey: Rkey,
        src: MemRef,
        len: u64,
    ) {
        self.ensure_registered(ctx, me, dst, len);
        let done = self
            .ib()
            .post_rdma_read(ctx, me, dst, rkey, src, len)
            .unwrap_or_else(|e| panic!("rdma get failed: {e}"));
        ctx.wait(&done);
    }

    fn count(&self, me: ProcId, p: Protocol) {
        self.pe_state(me).stats.lock().count(p);
    }

    /// Is the GPU backing `mem` on the same socket as `pe`'s HCA?
    fn mem_gpu_intra_socket(&self, mem: MemRef, hca_owner: ProcId) -> bool {
        match mem.space {
            MemSpace::Device(g) => {
                let topo = self.cluster().topo();
                topo.gpu_hca_intra_socket(g, topo.hca_of(hca_owner))
            }
            _ => true,
        }
    }

    /// Bounds-check a symmetric access against its heap: protects the
    /// staging/sync areas that sit after the host heap in the segment
    /// (an oversized put would otherwise silently corrupt them).
    pub(crate) fn check_sym_range(&self, sym: crate::addr::SymAddr, len: u64) {
        let heap = match sym.domain {
            crate::addr::Domain::Host => self.cfg().host_heap,
            crate::addr::Domain::Gpu => self.cfg().gpu_heap,
        };
        assert!(
            sym.offset.checked_add(len).is_some_and(|end| end <= heap),
            "symmetric access {sym}+{len} overruns the {} {} -byte heap",
            sym.domain,
            heap
        );
    }

    /// THE routing predicate: would `do_put` service this transfer with
    /// a single RDMA write under Enhanced-GDR? Non-blocking and fused
    /// (put_signal) fast paths key off this so they can never diverge
    /// from the blocking dispatch table.
    pub(crate) fn put_rdma_serviced(
        &self,
        me: ProcId,
        target: ProcId,
        src: MemRef,
        dst: MemRef,
        len: u64,
    ) -> bool {
        let cfg = *self.cfg();
        if cfg.design != Design::EnhancedGdr || me == target {
            return false;
        }
        let same_node = self.cluster().topo().same_node(me, target);
        match (same_node, src.is_device(), dst.is_device()) {
            (true, false, false) => false, // shm copy
            (true, true, true) => len <= cfg.loopback_dd_limit.min(cfg.loopback_put_limit),
            (true, _, _) => len <= cfg.loopback_put_limit,
            (false, false, false) => true,
            (false, src_dev, dst_dev) => {
                let dst_intra = self.mem_gpu_intra_socket(dst, target);
                len <= cfg.gdr_put_limit || (!src_dev && dst_intra && dst_dev)
            }
        }
    }

    /// Mirror predicate for gets: serviced by a single RDMA read?
    pub(crate) fn get_rdma_serviced(
        &self,
        me: ProcId,
        from: ProcId,
        src: MemRef,
        dst: MemRef,
        len: u64,
    ) -> bool {
        let cfg = *self.cfg();
        if cfg.design != Design::EnhancedGdr || me == from {
            return false;
        }
        let same_node = self.cluster().topo().same_node(me, from);
        if same_node {
            if !src.is_device() && !dst.is_device() {
                false // shm copy
            } else {
                len <= cfg.loopback_get_limit
            }
        } else if !src.is_device() {
            true
        } else {
            len <= cfg.gdr_get_limit
        }
    }

    // ---------- put ----------

    /// `shmem_putmem(dest, source, len, pe)`.
    pub(crate) fn do_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dest: SymAddr,
        src: MemRef,
        len: u64,
        target: ProcId,
    ) {
        if len == 0 {
            self.obs().latency("put", 0, SimDuration::ZERO);
            return;
        }
        let t0 = ctx.now();
        let token = self.next_op(me);
        let st = self.pe_state(me);
        st.enter_library();
        self.drain_pending(ctx, me);
        {
            let mut s = st.stats.lock();
            s.puts += 1;
            s.bytes_put += len;
        }
        self.check_sym_range(dest, len);
        let dst = self.layout().resolve(dest, target);
        let rkey = self.layout().rkey(dest.domain, target);
        let src_dev = src.is_device();
        let dst_dev = dst.is_device();
        let topo = self.cluster().topo();
        let same_node = topo.same_node(me, target);
        let cfg = *self.cfg();

        let chosen = if me == target {
            // self-put: a local copy
            if src_dev || dst_dev {
                self.cuda_copy(ctx, src, dst, len);
                Protocol::IpcCopy
            } else {
                self.shm_copy(ctx, src, dst, len);
                Protocol::ShmCopy
            }
        } else {
            match cfg.design {
                Design::Naive => {
                    assert!(
                        !src_dev && !dst_dev,
                        "Naive design: GPU buffers must be staged manually with cudaMemcpy \
                         (put {} -> {dst})",
                        src
                    );
                    if same_node {
                        self.shm_copy(ctx, src, dst, len);
                        Protocol::ShmCopy
                    } else {
                        self.rdma_put(ctx, me, src, rkey, dst, len, target, token);
                        Protocol::HostRdma
                    }
                }
                Design::HostPipeline => {
                    if same_node {
                        match (src_dev, dst_dev) {
                            (false, false) => {
                                self.shm_copy(ctx, src, dst, len);
                                Protocol::ShmCopy
                            }
                            // GPU destination: single IPC copy
                            (_, true) => {
                                self.cuda_copy(ctx, src, dst, len);
                                Protocol::IpcCopy
                            }
                            // D-H: the unoptimized inter-domain path — stage
                            // through own host memory, two copies.
                            (true, false) => {
                                self.two_copy_staged(ctx, me, src, dst, len);
                                Protocol::TwoCopyStaged
                            }
                        }
                    } else {
                        match (src_dev, dst_dev) {
                            (false, false) => {
                                self.rdma_put(ctx, me, src, rkey, dst, len, target, token);
                                Protocol::HostRdma
                            }
                            (true, true) => {
                                self.host_pipeline_put(ctx, me, src, dst, len, target, token);
                                Protocol::HostPipelineStaged
                            }
                            _ => panic!(
                                "Host-Pipeline design does not support inter-node \
                                 H-D / D-H configurations (paper Table I)"
                            ),
                        }
                    }
                }
                Design::EnhancedGdr => {
                    if same_node {
                        match (src_dev, dst_dev) {
                            (false, false) => {
                                self.shm_copy(ctx, src, dst, len);
                                Protocol::ShmCopy
                            }
                            (_, true) => {
                                // D-D pays P2P caps on both ends of the
                                // loopback: use the least threshold (§III-B)
                                let limit = if src_dev {
                                    cfg.loopback_dd_limit.min(cfg.loopback_put_limit)
                                } else {
                                    cfg.loopback_put_limit
                                };
                                if len <= limit {
                                    self.rdma_put(ctx, me, src, rkey, dst, len, target, token);
                                    Protocol::LoopbackGdr
                                } else {
                                    self.cuda_copy(ctx, src, dst, len);
                                    Protocol::IpcCopy
                                }
                            }
                            (true, false) => {
                                if len <= cfg.loopback_put_limit {
                                    self.rdma_put(ctx, me, src, rkey, dst, len, target, token);
                                    Protocol::LoopbackGdr
                                } else {
                                    // shmem_ptr design (paper Fig. 3): one
                                    // cudaMemcpy D2H straight into the
                                    // target's host heap in the shared segment.
                                    self.cuda_copy(ctx, src, dst, len);
                                    Protocol::IpcCopy
                                }
                            }
                        }
                    } else {
                        match (src_dev, dst_dev) {
                            (false, false) => {
                                self.rdma_put(ctx, me, src, rkey, dst, len, target, token);
                                Protocol::HostRdma
                            }
                            _ => {
                                let dst_intra = self.mem_gpu_intra_socket(dst, target);
                                if len <= cfg.gdr_put_limit || (!src_dev && dst_intra) {
                                    // Direct GDR (small/medium; host-source
                                    // with a clean write path: all sizes).
                                    self.rdma_put(ctx, me, src, rkey, dst, len, target, token);
                                    Protocol::DirectGdr
                                } else if dst_dev && !dst_intra {
                                    // P2P write bottleneck at the target:
                                    // stage into target host memory, proxy
                                    // performs the final H2D — still one-sided.
                                    self.proxy_put(ctx, me, src, dst, len, target, token);
                                    Protocol::ProxyPipeline
                                } else {
                                    // Pipeline GDR write: chunked D2H staging
                                    // + GDR RDMA writes, truly one-sided.
                                    self.pipeline_gdr_put(
                                        ctx,
                                        me,
                                        src,
                                        dst,
                                        dest.domain,
                                        len,
                                        target,
                                        token,
                                    );
                                    Protocol::PipelineGdrWrite
                                }
                            }
                        }
                    }
                }
            }
        };
        self.count(me, chosen);
        self.obs_op(
            "put",
            me,
            target,
            chosen,
            len,
            src_dev,
            dst_dev,
            same_node,
            t0,
            ctx.now(),
            token,
            |c, t| put_alts(&cfg, me == target, same_node, src_dev, dst_dev, c, t),
        );
        // Synchronous copy protocols deliver before returning, so the
        // flow ends right here; RDMA/pipeline paths attached their ends
        // to the remote completion inside the protocol.
        if matches!(
            chosen,
            Protocol::ShmCopy | Protocol::IpcCopy | Protocol::TwoCopyStaged
        ) {
            self.flow_end_at(self.pe_track(me), ctx.now(), token);
        }
        st.leave_library();
    }

    // ---------- get ----------

    /// `shmem_getmem(dest_local, source_sym, len, pe)`.
    pub(crate) fn do_get(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        dst: MemRef,
        source: SymAddr,
        len: u64,
        from: ProcId,
    ) {
        if len == 0 {
            self.obs().latency("get", 0, SimDuration::ZERO);
            return;
        }
        let t0 = ctx.now();
        let token = self.next_op(me);
        let st = self.pe_state(me);
        st.enter_library();
        self.drain_pending(ctx, me);
        {
            let mut s = st.stats.lock();
            s.gets += 1;
            s.bytes_get += len;
        }
        self.check_sym_range(source, len);
        let src = self.layout().resolve(source, from);
        let rkey = self.layout().rkey(source.domain, from);
        let src_dev = src.is_device();
        let dst_dev = dst.is_device();
        let topo = self.cluster().topo();
        let same_node = topo.same_node(me, from);
        let cfg = *self.cfg();

        let chosen = if me == from {
            if src_dev || dst_dev {
                self.cuda_copy(ctx, src, dst, len);
                Protocol::IpcCopy
            } else {
                self.shm_copy(ctx, src, dst, len);
                Protocol::ShmCopy
            }
        } else {
            match cfg.design {
                Design::Naive => {
                    assert!(
                        !src_dev && !dst_dev,
                        "Naive design: GPU buffers must be staged manually with cudaMemcpy"
                    );
                    if same_node {
                        self.shm_copy(ctx, src, dst, len);
                        Protocol::ShmCopy
                    } else {
                        self.rdma_get(ctx, me, dst, rkey, src, len);
                        Protocol::HostRdma
                    }
                }
                Design::HostPipeline => {
                    if same_node {
                        match (src_dev, dst_dev) {
                            (false, false) => {
                                self.shm_copy(ctx, src, dst, len);
                                Protocol::ShmCopy
                            }
                            // remote device -> local host: unoptimized
                            // inter-domain path, two copies through staging.
                            (true, false) => {
                                self.two_copy_staged(ctx, me, src, dst, len);
                                Protocol::TwoCopyStaged
                            }
                            // single IPC copy covers D-D and host->device
                            _ => {
                                self.cuda_copy(ctx, src, dst, len);
                                Protocol::IpcCopy
                            }
                        }
                    } else {
                        match (src_dev, dst_dev) {
                            (false, false) => {
                                self.rdma_get(ctx, me, dst, rkey, src, len);
                                Protocol::HostRdma
                            }
                            (true, true) => {
                                self.host_pipeline_get(ctx, me, dst, src, len, from);
                                Protocol::HostPipelineStaged
                            }
                            _ => panic!(
                                "Host-Pipeline design does not support inter-node \
                                 H-D / D-H configurations (paper Table I)"
                            ),
                        }
                    }
                }
                Design::EnhancedGdr => {
                    if same_node {
                        if !src_dev && !dst_dev {
                            self.shm_copy(ctx, src, dst, len);
                            Protocol::ShmCopy
                        } else if len <= cfg.loopback_get_limit {
                            self.rdma_get(ctx, me, dst, rkey, src, len);
                            Protocol::LoopbackGdr
                        } else {
                            // one direct CUDA copy (IPC-mapped peer / shared
                            // segment visible to cudaMemcpy)
                            self.cuda_copy(ctx, src, dst, len);
                            Protocol::IpcCopy
                        }
                    } else if !src_dev {
                        // remote host: direct RDMA read any size (the local
                        // scatter path is the strong P2P write direction)
                        self.rdma_get(ctx, me, dst, rkey, src, len);
                        if dst_dev {
                            Protocol::DirectGdr
                        } else {
                            Protocol::HostRdma
                        }
                    } else if len <= cfg.gdr_get_limit {
                        self.rdma_get(ctx, me, dst, rkey, src, len);
                        Protocol::DirectGdr
                    } else if cfg.proxy_enabled && len >= cfg.proxy_get_min {
                        // large get from remote GPU memory: remote proxy runs
                        // the reverse pipeline, target PE never involved
                        self.proxy_get(ctx, me, dst, src, len, from, token);
                        Protocol::ProxyPipeline
                    } else {
                        // ablation fallback: chunked direct GDR reads, paying
                        // the P2P read bottleneck
                        self.chunked_direct_get(ctx, me, dst, rkey, src, len);
                        Protocol::DirectGdr
                    }
                }
            }
        };
        self.count(me, chosen);
        self.obs_op(
            "get",
            me,
            from,
            chosen,
            len,
            src_dev,
            dst_dev,
            same_node,
            t0,
            ctx.now(),
            token,
            |c, t| get_alts(&cfg, me == from, same_node, src_dev, dst_dev, c, t),
        );
        // Every blocking-get protocol returns only once the data is
        // locally delivered — that return is the op's completion.
        self.flow_end_at(self.pe_track(me), ctx.now(), token);
        st.leave_library();
    }

    // ---------- atomic ----------

    /// 64-bit fetching atomic on symmetric memory.
    pub(crate) fn do_atomic(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        target_sym: SymAddr,
        target: ProcId,
        op: AtomicOp,
    ) -> u64 {
        let t0 = ctx.now();
        let token = self.next_op(me);
        let st = self.pe_state(me);
        st.enter_library();
        self.drain_pending(ctx, me);
        st.stats.lock().atomics += 1;
        if self.cfg().design != Design::EnhancedGdr && target_sym.is_gpu() {
            panic!(
                "{} design does not support atomics on GPU symmetric memory \
                 (GDR hardware atomics are an Enhanced-GDR feature)",
                self.cfg().design.name()
            );
        }
        let dst = self.layout().resolve(target_sym, target);
        let rkey = self.layout().rkey(target_sym.domain, target);
        let res = self
            .ib()
            .post_atomic(ctx, me, rkey, dst, op)
            .unwrap_or_else(|e| panic!("atomic failed: {e}"));
        ctx.wait(&res.done);
        self.count(me, Protocol::HwAtomic);
        self.obs_op(
            "atomic",
            me,
            target,
            Protocol::HwAtomic,
            8,
            false,
            target_sym.is_gpu(),
            self.cluster().topo().same_node(me, target),
            t0,
            ctx.now(),
            token,
            |c, _| c.push(Protocol::HwAtomic.name()),
        );
        // The atomic acted on the target's memory; end the flow there.
        self.flow_end_at(self.pe_track(target), ctx.now(), token);
        st.leave_library();
        res.value()
    }

    /// The baseline's two-copy staged path (inter-domain intra-node):
    /// CUDA copy into own staging, then a second copy to the final spot.
    fn two_copy_staged(self: &Arc<Self>, ctx: &TaskCtx, me: ProcId, src: MemRef, dst: MemRef, len: u64) {
        let off = self.alloc_staging_blocking(ctx, me, len);
        let stg = self.layout().staging_base(me).add(off);
        // copy 1: into staging (CUDA if either end is a device)
        if src.is_device() {
            self.cuda_copy(ctx, src, stg, len);
        } else {
            self.shm_copy(ctx, src, stg, len);
        }
        // copy 2: staging to destination
        if dst.is_device() {
            self.cuda_copy(ctx, stg, dst, len);
        } else {
            self.shm_copy(ctx, stg, dst, len);
        }
        self.pe_state(me).staging_alloc.lock().free(off, len);
    }
}
