//! The per-PE handle: the OpenSHMEM API surface.
//!
//! A [`Pe`] is what application code receives from
//! [`ShmemMachine::run`]: `shmalloc(size, domain)`, `putmem`/`getmem`,
//! atomics, `quiet`/`fence`/`barrier_all`, `wait_until`, and `shmem_ptr`,
//! plus local-memory helpers for writing benchmarks and applications.

use crate::addr::{Domain, Pod, SymAddr, SymSlice};
use crate::error::TransferError;
use crate::machine::ShmemMachine;
use crate::state::PeStats;
use ib_sim::AtomicOp;
use pcie_sim::mem::{MemRef, MemSpace};
use pcie_sim::ProcId;
use sim_core::{SimDuration, SimTime, TaskCtx};
use std::sync::Arc;

/// Comparison operator for [`Pe::wait_until`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    Eq,
    Ne,
    Ge,
    Le,
}

impl Cmp {
    fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Le => lhs <= rhs,
        }
    }
}

/// One processing element's view of the job.
pub struct Pe {
    m: Arc<ShmemMachine>,
    ctx: TaskCtx,
    id: ProcId,
}

impl Pe {
    pub(crate) fn new(m: Arc<ShmemMachine>, ctx: TaskCtx, id: ProcId) -> Pe {
        Pe { m, ctx, id }
    }

    // ---------- identity & environment ----------

    /// `shmem_my_pe()`.
    pub fn my_pe(&self) -> usize {
        self.id.index()
    }

    /// `shmem_n_pes()`.
    pub fn n_pes(&self) -> usize {
        self.m.n_pes()
    }

    pub fn proc_id(&self) -> ProcId {
        self.id
    }

    pub fn machine(&self) -> &Arc<ShmemMachine> {
        &self.m
    }

    pub fn ctx(&self) -> &TaskCtx {
        &self.ctx
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Spend `d` of application compute time (outside the library: the
    /// host-pipeline progress engine does NOT run during this).
    pub fn compute(&self, d: SimDuration) {
        self.ctx.advance(d);
    }

    /// Model a GPU kernel execution (launch overhead + cost).
    pub fn gpu_compute(&self, cost: SimDuration) {
        self.m.gpus().kernel_sync(&self.ctx, cost);
    }

    // ---------- symmetric allocation ----------

    /// `shmalloc(size, domain)` — collective; all PEs must call with the
    /// same arguments in the same order. Includes the implicit barrier.
    pub fn shmalloc(&self, bytes: u64, domain: Domain) -> SymAddr {
        let st = self.m.pe_state(self.id);
        let off = match domain {
            Domain::Host => st.host_alloc.lock().alloc(bytes),
            Domain::Gpu => st.gpu_alloc.lock().alloc(bytes),
        }
        .unwrap_or_else(|e| panic!("{domain} symmetric heap exhausted: {e}"));
        self.barrier_all();
        SymAddr::new(domain, off)
    }

    /// Typed collective allocation.
    pub fn shmalloc_slice<T: Pod>(&self, n: usize, domain: Domain) -> SymSlice<T> {
        let addr = self.shmalloc((n * T::SIZE) as u64, domain);
        SymSlice::new(addr, n)
    }

    /// `shfree` — collective.
    pub fn shfree(&self, addr: SymAddr, bytes: u64) {
        let st = self.m.pe_state(self.id);
        match addr.domain {
            Domain::Host => st.host_alloc.lock().free(addr.offset, bytes),
            Domain::Gpu => st.gpu_alloc.lock().free(addr.offset, bytes),
        }
        self.barrier_all();
    }

    // ---------- local (private) memory ----------

    /// Allocate private host memory (not symmetric; like malloc).
    pub fn malloc_host(&self, bytes: u64) -> MemRef {
        let off = self
            .m
            .pe_state(self.id)
            .priv_alloc
            .lock()
            .alloc(bytes)
            .unwrap_or_else(|e| panic!("private host memory exhausted: {e}"));
        MemRef::new(MemSpace::Host(self.id), off)
    }

    /// Free private host memory.
    pub fn free_host(&self, mem: MemRef, bytes: u64) {
        assert_eq!(mem.space, MemSpace::Host(self.id), "foreign private buffer");
        self.m.pe_state(self.id).priv_alloc.lock().free(mem.offset, bytes);
    }

    /// Allocate private device memory on this PE's GPU (like cudaMalloc).
    pub fn malloc_dev(&self, bytes: u64) -> MemRef {
        let gpu = self.m.cluster().topo().gpu_of(self.id);
        self.m
            .gpus()
            .gpu(gpu)
            .malloc(bytes)
            .unwrap_or_else(|e| panic!("device memory exhausted: {e}"))
    }

    pub fn free_dev(&self, mem: MemRef, bytes: u64) {
        let gpu = self.m.cluster().topo().gpu_of(self.id);
        self.m.gpus().gpu(gpu).free(mem, bytes);
    }

    /// Synchronous cudaMemcpy between any local buffers (explicit staging
    /// for the Naive design, app-side data movement).
    pub fn cuda_memcpy(&self, src: MemRef, dst: MemRef, len: u64) {
        self.m.gpus().memcpy_sync(&self.ctx, src, dst, len);
    }

    /// Resolve a symmetric address on a PE (usually `self`).
    pub fn addr_of(&self, sym: SymAddr, pe: usize) -> MemRef {
        self.m.layout().resolve(sym, ProcId(pe as u32))
    }

    /// `shmem_ptr`: a directly usable pointer to a peer's symmetric
    /// object — only for host-domain objects of node-local peers.
    pub fn shmem_ptr(&self, sym: SymAddr, pe: usize) -> Option<MemRef> {
        let target = ProcId(pe as u32);
        let topo = self.m.cluster().topo();
        if sym.domain == Domain::Host && topo.same_node(self.id, target) {
            Some(self.m.layout().resolve(sym, target))
        } else {
            None
        }
    }

    // ---------- zero-time raw access (test & setup helpers) ----------

    /// Write bytes directly into any local buffer or symmetric object on
    /// this PE. Zero virtual time: models a CPU store / pre-initialized
    /// data. Use [`Pe::cuda_memcpy`] for time-accurate device writes.
    pub fn write_raw(&self, mem: MemRef, data: &[u8]) {
        self.m
            .cluster()
            .mem()
            .write_bytes(mem, data)
            .expect("raw write");
    }

    /// Read bytes directly (zero virtual time).
    pub fn read_raw(&self, mem: MemRef, len: u64) -> Vec<u8> {
        self.m.cluster().mem().read_bytes(mem, len).expect("raw read")
    }

    /// Write a typed slice into this PE's copy of a symmetric object.
    pub fn write_sym<T: Pod>(&self, s: &SymSlice<T>, vals: &[T]) {
        assert!(vals.len() <= s.len(), "writing past symmetric object");
        self.write_raw(self.addr_of(s.addr(), self.my_pe()), &T::to_bytes(vals));
    }

    /// Read this PE's copy of a symmetric object.
    pub fn read_sym<T: Pod>(&self, s: &SymSlice<T>) -> Vec<T> {
        let b = self.read_raw(self.addr_of(s.addr(), self.my_pe()), s.byte_len());
        T::from_bytes(&b)
    }

    // ---------- RMA ----------

    /// `shmem_putmem(dest, source, len, pe)`: `source` is any local
    /// buffer (private host/device or resolved symmetric address).
    /// Panics if the transfer fails permanently under an active fault
    /// plan — use [`Pe::try_putmem`] to handle typed errors instead.
    pub fn putmem(&self, dest: SymAddr, src: MemRef, len: u64, pe: usize) {
        self.try_putmem(dest, src, len, pe)
            .unwrap_or_else(|e| panic!("putmem failed: {e}"));
    }

    /// Fallible `shmem_putmem`: retries/fallbacks happen inside; what
    /// remains is a typed [`TransferError`] (retry exhaustion, per-op
    /// timeout, capability fault with no fallback). A chunked transfer
    /// whose retries exhaust mid-flight returns
    /// [`TransferError::PartialDelivery`]: delivered chunks are final,
    /// failed chunks left no bytes and no staging credits behind.
    pub fn try_putmem(
        &self,
        dest: SymAddr,
        src: MemRef,
        len: u64,
        pe: usize,
    ) -> Result<(), TransferError> {
        self.m
            .do_put(&self.ctx, self.id, dest, src, len, ProcId(pe as u32))
    }

    /// Put from one of this PE's symmetric objects.
    pub fn putmem_sym(&self, dest: SymAddr, src_sym: SymAddr, len: u64, pe: usize) {
        let src = self.addr_of(src_sym, self.my_pe());
        self.putmem(dest, src, len, pe);
    }

    /// Typed put of a whole slice view.
    pub fn put_slice<T: Pod>(&self, dest: &SymSlice<T>, src: MemRef, pe: usize) {
        self.putmem(dest.addr(), src, dest.byte_len(), pe);
    }

    /// `shmem_getmem(dest, source, len, pe)`. Panics on permanent
    /// failure; see [`Pe::try_getmem`].
    pub fn getmem(&self, dest: MemRef, source: SymAddr, len: u64, pe: usize) {
        self.try_getmem(dest, source, len, pe)
            .unwrap_or_else(|e| panic!("getmem failed: {e}"));
    }

    /// Fallible `shmem_getmem`: surfaces a typed [`TransferError`]
    /// instead of panicking when the fault plan defeats every retry.
    /// Chunked gets that fail mid-transfer return
    /// [`TransferError::PartialDelivery`]; destination bytes of the
    /// undelivered chunks are unspecified.
    pub fn try_getmem(
        &self,
        dest: MemRef,
        source: SymAddr,
        len: u64,
        pe: usize,
    ) -> Result<(), TransferError> {
        self.m
            .do_get(&self.ctx, self.id, dest, source, len, ProcId(pe as u32))
    }

    /// Get into one of this PE's symmetric objects.
    pub fn getmem_sym(&self, dest_sym: SymAddr, source: SymAddr, len: u64, pe: usize) {
        let dest = self.addr_of(dest_sym, self.my_pe());
        self.getmem(dest, source, len, pe);
    }

    /// `shmem_putmem_nbi`: non-blocking put. The source buffer must not
    /// be modified until the next `quiet`/`barrier_all`.
    pub fn putmem_nbi(&self, dest: SymAddr, src: MemRef, len: u64, pe: usize) {
        self.machine()
            .clone()
            .do_put_nbi(&self.ctx, self.id, dest, src, len, ProcId(pe as u32))
            .unwrap_or_else(|e| panic!("putmem_nbi failed: {e}"));
    }

    /// `shmem_getmem_nbi`: non-blocking get. The destination contents
    /// are undefined until the next `quiet`/`barrier_all`.
    pub fn getmem_nbi(&self, dest: MemRef, source: SymAddr, len: u64, pe: usize) {
        self.machine()
            .clone()
            .do_get_nbi(&self.ctx, self.id, dest, source, len, ProcId(pe as u32))
            .unwrap_or_else(|e| panic!("getmem_nbi failed: {e}"));
    }

    /// `shmem_put_signal` (OpenSHMEM 1.5): one-sided put of `len` bytes
    /// plus an ordered 8-byte signal store into `sig` on the same target
    /// — the consumer just `wait_until`s the signal, no quiet/flag pair
    /// needed. Only RDMA-serviced paths support the fused form; other
    /// protocols fall back to put + fence + put_u64 transparently.
    pub fn put_signal(
        &self,
        dest: SymAddr,
        src: MemRef,
        len: u64,
        sig: SymAddr,
        sig_value: u64,
        pe: usize,
    ) {
        self.machine()
            .clone()
            .do_put_signal(
                &self.ctx,
                self.id,
                dest,
                src,
                len,
                sig,
                sig_value,
                ProcId(pe as u32),
            )
            .unwrap_or_else(|e| panic!("put_signal failed: {e}"));
    }

    /// `shmem_<type>_p`: store one element into a remote symmetric object.
    pub fn put_one<T: Pod>(&self, dest: SymAddr, value: T, pe: usize) {
        let scratch = self.machine().sync_scratch(self.id);
        self.write_raw(scratch, &T::to_bytes(&[value]));
        self.putmem(dest, scratch, T::SIZE as u64, pe);
    }

    /// `shmem_<type>_g`: fetch one element from a remote symmetric object.
    pub fn get_one<T: Pod>(&self, source: SymAddr, pe: usize) -> T {
        let buf = self.machine().sync_scratch(self.id).add(64);
        self.getmem(buf, source, T::SIZE as u64, pe);
        T::from_bytes(&self.read_raw(buf, T::SIZE as u64))[0]
    }

    /// `shmem_<type>_iput`: strided put — element `k` of the source
    /// (stride `sst` elements) lands at element `k * dst` stride of the
    /// destination. Implemented as per-element non-blocking puts, like
    /// most production runtimes (so wide strides are latency-bound —
    /// pack into contiguous buffers when that matters).
    pub fn iput<T: Pod>(
        &self,
        dest: SymAddr,
        src: MemRef,
        dst_stride: usize,
        src_stride: usize,
        nelems: usize,
        pe: usize,
    ) {
        let es = T::SIZE as u64;
        for k in 0..nelems {
            self.putmem_nbi(
                dest.add(es * (k * dst_stride) as u64),
                src.add(es * (k * src_stride) as u64),
                es,
                pe,
            );
        }
        self.quiet();
    }

    /// `shmem_<type>_iget`: strided get (per-element, blocking overall).
    pub fn iget<T: Pod>(
        &self,
        dest: MemRef,
        source: SymAddr,
        dst_stride: usize,
        src_stride: usize,
        nelems: usize,
        pe: usize,
    ) {
        let es = T::SIZE as u64;
        for k in 0..nelems {
            self.getmem_nbi(
                dest.add(es * (k * dst_stride) as u64),
                source.add(es * (k * src_stride) as u64),
                es,
                pe,
            );
        }
        self.quiet();
    }

    /// Put a single u64 (typed convenience, e.g. flags).
    pub fn put_u64(&self, dest: SymAddr, value: u64, pe: usize) {
        let scratch = self.m.sync_scratch(self.id);
        self.write_raw(scratch, &value.to_le_bytes());
        self.putmem(dest, scratch, 8, pe);
    }

    /// Read a u64 from this PE's copy of a symmetric object.
    pub fn local_u64(&self, sym: SymAddr) -> u64 {
        let b = self.read_raw(self.addr_of(sym, self.my_pe()), 8);
        u64::from_le_bytes(b.try_into().unwrap())
    }

    // ---------- atomics ----------

    /// `shmem_atomic_fetch_add` (64-bit, IB hardware atomic via GDR when
    /// the object lives on a GPU). Panics on permanent failure; see
    /// [`Pe::try_atomic_fetch_add`].
    pub fn atomic_fetch_add(&self, sym: SymAddr, value: u64, pe: usize) -> u64 {
        self.try_atomic_fetch_add(sym, value, pe)
            .unwrap_or_else(|e| panic!("atomic_fetch_add failed: {e}"))
    }

    /// Fallible fetch-add: an atomic on GPU symmetric memory with GDR
    /// capability-disabled at the target has no software fallback and
    /// surfaces [`TransferError::CapabilityDisabled`].
    pub fn try_atomic_fetch_add(
        &self,
        sym: SymAddr,
        value: u64,
        pe: usize,
    ) -> Result<u64, TransferError> {
        self.m
            .do_atomic(&self.ctx, self.id, sym, ProcId(pe as u32), AtomicOp::FetchAdd(value))
    }

    /// `shmem_atomic_compare_swap` (64-bit). Panics on permanent
    /// failure; see [`Pe::try_atomic_compare_swap`].
    pub fn atomic_compare_swap(&self, sym: SymAddr, compare: u64, swap: u64, pe: usize) -> u64 {
        self.try_atomic_compare_swap(sym, compare, swap, pe)
            .unwrap_or_else(|e| panic!("atomic_compare_swap failed: {e}"))
    }

    /// Fallible compare-swap; see [`Pe::try_atomic_fetch_add`].
    pub fn try_atomic_compare_swap(
        &self,
        sym: SymAddr,
        compare: u64,
        swap: u64,
        pe: usize,
    ) -> Result<u64, TransferError> {
        self.m.do_atomic(
            &self.ctx,
            self.id,
            sym,
            ProcId(pe as u32),
            AtomicOp::CompareSwap { compare, swap },
        )
    }

    /// 32-bit fetch-add via the paper's mask technique (§III-D): the HCA
    /// only does 64-bit atomics, so narrow atomics loop on a 64-bit
    /// compare-and-swap of the containing aligned word.
    pub fn atomic_fetch_add32(&self, sym: SymAddr, value: u32, pe: usize) -> u32 {
        let word = SymAddr::new(sym.domain, sym.offset & !7);
        let lo_half = (sym.offset & 7) == 0;
        assert!(sym.offset.is_multiple_of(4), "unaligned 32-bit atomic");
        loop {
            // fetch the current word (fetch_add of 0)
            let cur = self.atomic_fetch_add(word, 0, pe);
            let old32 = if lo_half { cur as u32 } else { (cur >> 32) as u32 };
            let new32 = old32.wrapping_add(value);
            let new = if lo_half {
                (cur & 0xFFFF_FFFF_0000_0000) | new32 as u64
            } else {
                (cur & 0x0000_0000_FFFF_FFFF) | ((new32 as u64) << 32)
            };
            let prev = self.atomic_compare_swap(word, cur, new, pe);
            if prev == cur {
                return old32;
            }
        }
    }

    // ---------- ordering & synchronization ----------

    /// `shmem_quiet`: block until every outstanding put by this PE is
    /// complete at its target.
    pub fn quiet(&self) {
        let t0 = self.ctx.now();
        let st = self.m.pe_state(self.id);
        st.enter_library();
        self.m.drain_pending(&self.ctx, self.id);
        loop {
            let list: Vec<_> = std::mem::take(&mut *st.outstanding.lock());
            if list.is_empty() {
                break;
            }
            for c in list {
                self.ctx.wait_threshold(&c, 1);
            }
        }
        st.leave_library();
        // quiet moves no payload: it lands in the size-class-0 bucket,
        // making flush-dominated windows visible in the histograms
        self.m.obs().latency("quiet", 0, self.ctx.now().since(t0));
    }

    /// `shmem_fence`: ordering of puts to each PE. Implemented as
    /// `quiet` (strictly stronger): waiting for remote completion of
    /// everything outstanding trivially establishes per-target ordering,
    /// regardless of how individual transports interleave.
    pub fn fence(&self) {
        self.quiet();
    }

    /// `shmem_wait_until` on a host-domain symmetric u64.
    pub fn wait_until(&self, sym: SymAddr, cmp: Cmp, value: u64) {
        assert_eq!(
            sym.domain,
            Domain::Host,
            "wait_until polls host symmetric memory"
        );
        let st = self.m.pe_state(self.id);
        st.enter_library();
        let mem = self.addr_of(sym, self.my_pe());
        let arena = self.m.cluster().mem().get(mem.space).expect("sym arena");
        loop {
            self.m.drain_pending(&self.ctx, self.id);
            let cur = arena.read_u64(mem.offset).expect("flag read");
            if cmp.eval(cur, value) {
                break;
            }
            self.ctx.advance(self.m.poll_interval());
        }
        st.leave_library();
    }

    // ---------- statistics ----------

    /// Snapshot of this PE's counters.
    pub fn stats(&self) -> PeStats {
        self.m.pe_state(self.id).stats.lock().clone()
    }
}
