//! Target-side progress: the piece of the baseline that breaks
//! one-sidedness.
//!
//! Host-pipeline transfers end with work only the **target process** can
//! do (the final H2D copy, or serving a get request). When such work
//! arrives while the target is inside a library call, it executes after
//! a short progress delay; otherwise it queues until the target's next
//! call — which is why the baseline's communication time grows with
//! target-side computation (paper Fig. 10), and exactly what the
//! Enhanced-GDR design eliminates.

use crate::machine::ShmemMachine;
use crate::state::{Delivery, GetRequest, PendingWork};
use ib_sim::RdmaCompletion;
use pcie_sim::ProcId;
use sim_core::{Completion, Sched, SimDuration, TaskCtx};
use std::sync::Arc;

impl ShmemMachine {
    /// Deliver `work` to `target`: execute immediately (plus a poll
    /// delay) if the target is inside the library, else enqueue it for
    /// the target's next call. Invoked from transfer-completion events.
    pub(crate) fn arrive_pending(self: &Arc<Self>, s: &mut Sched<'_>, target: ProcId, work: PendingWork) {
        let st = self.pe_state(target);
        let mut q = st.pending.lock();
        if st.is_in_library() {
            drop(q);
            self.execute_pending(s, target, work, self.poll_interval());
        } else if self.cfg().service_thread {
            // the service thread picks the work up after its polling
            // period plus the channel-lock handoff with the main thread
            drop(q);
            let delay = SimDuration::from_ns(self.cfg().service_poll_ns)
                + self.poll_interval() * 2;
            self.execute_pending(s, target, work, delay);
        } else {
            q.push_back(work);
        }
    }

    /// Drain the queue at library entry (every shmem call does this).
    pub(crate) fn drain_pending(self: &Arc<Self>, ctx: &TaskCtx, me: ProcId) {
        loop {
            let work = self.pe_state(me).pending.lock().pop_front();
            match work {
                Some(w) => {
                    // the target's CPU spends a little time progressing
                    ctx.advance(self.poll_interval());
                    ctx.with_sched(|s| self.execute_pending(s, me, w, SimDuration::ZERO));
                }
                None => break,
            }
        }
    }

    /// Run one piece of deferred target-side work (engine lock held).
    pub(crate) fn execute_pending(
        self: &Arc<Self>,
        s: &mut Sched<'_>,
        target: ProcId,
        work: PendingWork,
        delay: SimDuration,
    ) {
        self.pe_state(target).stats.lock().progressed += 1;
        match work {
            PendingWork::Deliver(d) => self.exec_delivery(s, target, d, delay),
            PendingWork::ServeGet(g) => self.exec_serve_get(s, target, g, delay),
        }
    }

    /// Final H2D copy of a host-pipeline put chunk + ack back to the source.
    fn exec_delivery(self: &Arc<Self>, s: &mut Sched<'_>, target: ProcId, d: Delivery, delay: SimDuration) {
        let mach = self.clone();
        let ack_lat = self.ack_latency();
        // the target's final copy is a full cudaMemcpy call; a stalled
        // progress agent (fault plan) starts it late
        let delay = delay
            + self.cluster().hw().gpu.memcpy_overhead
            + self.proxy_stall_extra(self.cluster().topo().node_of(target), s.now());
        s.schedule_in(
            delay,
            Box::new(move |s| {
                let h2d = Completion::new();
                mach.gpus().dma_start(s, d.staged, d.dst, d.len, &h2d);
                let mach2 = mach.clone();
                s.call_on(
                    &h2d,
                    1,
                    Box::new(move |s| {
                        mach2
                            .pe_state(target)
                            .staging_alloc
                            .lock()
                            .free(d.staging_off, d.len);
                        let ack = d.ack.clone();
                        s.schedule_in(ack_lat, Box::new(move |s| s.signal(&ack, 1)));
                    }),
                );
            }),
        );
    }

    /// Serve a host-pipeline get: chunked D2H into this PE's staging,
    /// each chunk RDMA-written into the requester's staging strip.
    /// Each reply post draws from the *serving* side's CQE fault stream;
    /// a chunk that exhausts its retries frees its staging credit and
    /// poisons `served`, and the requester reports the partial delivery.
    fn exec_serve_get(self: &Arc<Self>, s: &mut Sched<'_>, target: ProcId, g: GetRequest, delay: SimDuration) {
        let chunk = self.cfg().pipeline_chunk;
        let n = g.len.div_ceil(chunk);
        let req_rkey = self.layout().host_rkey(g.requester);
        // a stalled progress agent (fault plan) begins serving late
        let delay = delay + self.proxy_stall_extra(self.cluster().topo().node_of(target), s.now());
        for i in 0..n {
            let off = i * chunk;
            let clen = chunk.min(g.len - off);
            // the serving side's D2H is a full cudaMemcpy call per chunk
            let delay = delay + self.cluster().hw().gpu.memcpy_overhead * (i + 1);
            // staging is allocated here, in event context: a full area is
            // a configuration error, so fail loudly — unless the op runs
            // under a fault plan, where starvation resolves the chunk as
            // failed instead of crashing the run
            let t_off = match self.pe_state(target).staging_alloc.lock().alloc(clen) {
                Ok(o) => o,
                Err(_) if g.recovery.armed() => {
                    self.obs().fault_tally_at("exhausted", "host-pipeline-staged", s.now());
                    g.recovery.chunk_failed();
                    let served = g.served.clone();
                    s.schedule_in(delay, Box::new(move |s| s.signal(&served, 1)));
                    continue;
                }
                Err(_) => panic!(
                    "target staging exhausted while serving a get; raise RuntimeConfig::staging"
                ),
            };
            let t_stg = self.layout().staging_base(target).add(t_off);
            let src_c = g.src.add(off);
            let req_c = g.req_staging.add(off);
            let mach = self.clone();
            let served = g.served.clone();
            let recovery = g.recovery.clone();
            let token = g.token;
            s.schedule_in(
                delay,
                Box::new(move |s| {
                    let d2h = Completion::new();
                    mach.gpus().dma_start(s, src_c, t_stg, clen, &d2h);
                    let mach2 = mach.clone();
                    s.call_on(
                        &d2h,
                        1,
                        Box::new(move |s| {
                            let m = mach2.clone();
                            let served_ok = served.clone();
                            let rec_ok = recovery.clone();
                            let post: sim_core::Action = Box::new(move |s| {
                                let comp = RdmaCompletion::new();
                                m.ib()
                                    .rdma_write_start(
                                        s, target, t_stg, req_rkey, req_c, clen, &comp,
                                    )
                                    .expect("serve-get chunk rdma");
                                let m2 = m.clone();
                                s.call_on(
                                    &comp.local,
                                    1,
                                    Box::new(move |_| {
                                        m2.pe_state(target)
                                            .staging_alloc
                                            .lock()
                                            .free(t_off, clen);
                                    }),
                                );
                                s.call_on(
                                    &comp.remote,
                                    1,
                                    Box::new(move |s| {
                                        rec_ok.chunk_ok(clen);
                                        s.signal(&served_ok, 1);
                                    }),
                                );
                            });
                            let m3 = mach2.clone();
                            let on_fail: sim_core::Action = Box::new(move |s| {
                                m3.pe_state(target).staging_alloc.lock().free(t_off, clen);
                                recovery.chunk_failed();
                                s.signal(&served, 1);
                            });
                            mach2.chunk_post_with_retry(
                                s,
                                target,
                                "host-pipeline-staged",
                                token,
                                post,
                                on_fail,
                            );
                        }),
                    );
                }),
            );
        }
    }
}
