//! # shmem-gdr — a GDR-aware OpenSHMEM runtime for simulated GPU clusters
//!
//! Reproduction of *"Exploiting GPUDirect RDMA in Designing High
//! Performance OpenSHMEM for NVIDIA GPU Clusters"* (CLUSTER 2015). The
//! runtime implements the paper's domain-based symmetric memory model —
//! `shmalloc(size, domain)` with host **and GPU** symmetric heaps — and
//! its three designs:
//!
//! - [`Design::Naive`]: host-only communication, users stage GPU data;
//! - [`Design::HostPipeline`]: the CUDA-aware baseline [15] (IPC copies
//!   intra-node, host-staged pipeline inter-node, target-side last copy);
//! - [`Design::EnhancedGdr`]: the paper's contribution — GDR loopback,
//!   direct GDR, pipeline-GDR-write and proxy protocols, truly one-sided
//!   in every (H-H, H-D, D-H, D-D) × (intra-, inter-node) configuration.
//!
//! ```
//! use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine};
//! use pcie_sim::ClusterSpec;
//!
//! let m = ShmemMachine::build(
//!     ClusterSpec::internode_pair(),
//!     RuntimeConfig::tuned(Design::EnhancedGdr),
//! );
//! m.run(|pe| {
//!     // a symmetric vector on every PE's GPU
//!     let x = pe.shmalloc_slice::<f64>(16, Domain::Gpu);
//!     if pe.my_pe() == 0 {
//!         let src = pe.malloc_dev(128);
//!         pe.write_raw(src, &42f64.to_le_bytes().repeat(16));
//!         pe.put_slice(&x, src, 1);   // GPU -> remote GPU, one-sided
//!         pe.quiet();
//!     }
//!     pe.barrier_all();
//!     if pe.my_pe() == 1 {
//!         assert_eq!(pe.read_sym(&x), vec![42f64; 16]);
//!     }
//! });
//! ```

pub mod addr;
pub mod collectives;
pub mod config;
pub mod error;
pub mod health;
pub mod layout;
pub mod lock;
pub mod machine;
pub mod membership;
pub mod msg;
pub mod pe;
pub mod pending;
pub mod recovery;
pub mod report;
pub mod pipeline;
pub mod protocols;
pub mod state;
pub mod sync;

pub use addr::{Domain, Pod, SymAddr, SymSlice};
pub use collectives::{RedOp, Reducible};
pub use config::{Design, RuntimeConfig};
pub use error::TransferError;
pub use layout::HeapLayout;
pub use machine::ShmemMachine;
pub use membership::{
    Membership, PartitionOutcome, SplitSchedule, View, DETECT_BOUND_NS, HEAL_BOUND_NS,
    HEARTBEAT_PERIOD_NS, MISSED_BEATS,
};
pub use msg::MsgHandle;
pub use pe::{Cmp, Pe};
pub use report::JobReport;
pub use state::{PeStats, Protocol};

// re-export the substrate types users commonly need
pub use faults::{FaultPlan, LinkScope, LinkWindow, ProxyStall};
pub use pcie_sim::{ClusterSpec, HwProfile, MemRef, PlacementPolicy, ProcId};
pub use sim_core::{SimDuration, SimTime};
