//! Distributed lock routines (`shmem_set_lock` / `shmem_test_lock` /
//! `shmem_clear_lock`), built on the HCA hardware atomics exactly as the
//! paper describes for critical sections (§II-C, §III-D).
//!
//! The lock is a symmetric `u64`; by convention the authoritative copy
//! lives on PE 0 (the usual OpenSHMEM practice). Acquisition is
//! test-and-set via `compare_swap` with exponential backoff — every
//! attempt is a real fabric atomic with real latency, so contention
//! behaviour is observable in virtual time.

use crate::addr::SymAddr;
use crate::pe::Pe;
use sim_core::SimDuration;

/// PE whose copy holds the lock state.
const LOCK_HOME: usize = 0;

impl Pe {
    /// `shmem_set_lock`: blocks until the lock is acquired.
    pub fn set_lock(&self, lock: SymAddr) {
        let me = self.my_pe() as u64 + 1;
        let mut backoff = SimDuration::from_ns(400);
        let cap = SimDuration::from_us(10);
        loop {
            let prev = self.atomic_compare_swap(lock, 0, me, LOCK_HOME);
            if prev == 0 {
                return;
            }
            self.compute(backoff);
            backoff = (backoff * 2).min(cap);
        }
    }

    /// `shmem_test_lock`: one acquisition attempt; true on success.
    pub fn test_lock(&self, lock: SymAddr) -> bool {
        let me = self.my_pe() as u64 + 1;
        self.atomic_compare_swap(lock, 0, me, LOCK_HOME) == 0
    }

    /// `shmem_clear_lock`: release; panics if this PE is not the holder
    /// (a usage bug worth failing loudly on).
    pub fn clear_lock(&self, lock: SymAddr) {
        let me = self.my_pe() as u64 + 1;
        let prev = self.atomic_compare_swap(lock, me, 0, LOCK_HOME);
        assert_eq!(
            prev, me,
            "clear_lock by pe{} but the lock is held by {:?}",
            self.my_pe(),
            (prev != 0).then(|| prev - 1)
        );
    }
}
