//! Job-level reporting: aggregate per-PE counters into a readable
//! summary (protocol histogram, bytes moved, proxy activity).

use crate::machine::ShmemMachine;
use crate::state::{PeStats, Protocol};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Aggregated job statistics.
#[derive(Clone, Debug, Default)]
pub struct JobReport {
    pub puts: u64,
    pub gets: u64,
    pub atomics: u64,
    pub barriers: u64,
    pub bytes_put: u64,
    pub bytes_get: u64,
    pub progressed: u64,
    pub by_protocol: [u64; Protocol::COUNT],
    pub proxy_gets: u64,
    pub proxy_puts: u64,
    pub proxy_bytes: u64,
    /// Per-PE counter snapshots, indexed by PE number.
    pub per_pe: Vec<PeStats>,
}

impl ShmemMachine {
    /// Aggregate every PE's counters (call after `run`).
    pub fn report(&self) -> JobReport {
        let mut r = JobReport::default();
        for i in 0..self.n_pes() {
            let st = self.pe_state(pcie_sim::ProcId(i as u32)).stats.lock();
            r.puts += st.puts;
            r.gets += st.gets;
            r.atomics += st.atomics;
            r.barriers += st.barriers;
            r.bytes_put += st.bytes_put;
            r.bytes_get += st.bytes_get;
            r.progressed += st.progressed;
            for (acc, v) in r.by_protocol.iter_mut().zip(st.by_protocol.iter()) {
                *acc += v;
            }
            r.per_pe.push(st.clone());
        }
        for n in 0..self.cluster().topo().nnodes() {
            let p = self.proxy(pcie_sim::NodeId(n as u32));
            r.proxy_gets += p.gets_served.load(Ordering::Relaxed);
            r.proxy_puts += p.puts_served.load(Ordering::Relaxed);
            r.proxy_bytes += p.bytes.load(Ordering::Relaxed);
        }
        r
    }
}

impl JobReport {
    /// Render the report as an aligned text block.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "ops: {} puts ({} B), {} gets ({} B), {} atomics, {} barriers",
            self.puts, self.bytes_put, self.gets, self.bytes_get, self.atomics, self.barriers
        );
        let _ = writeln!(s, "protocols:");
        for p in Protocol::ALL {
            let c = self.by_protocol[p as usize];
            if c > 0 {
                let _ = writeln!(s, "  {:<22} {c}", p.name());
            }
        }
        if self.per_pe.len() > 1 {
            let _ = writeln!(s, "per-PE:");
            for (i, st) in self.per_pe.iter().enumerate() {
                let mut protos = String::new();
                for p in Protocol::ALL {
                    let c = st.of(p);
                    if c > 0 {
                        if !protos.is_empty() {
                            protos.push(' ');
                        }
                        let _ = write!(protos, "{}:{c}", p.name());
                    }
                }
                let _ = writeln!(
                    s,
                    "  pe/{i}: {} puts ({} B), {} gets ({} B), {} atomics, {} barriers  [{protos}]",
                    st.puts, st.bytes_put, st.gets, st.bytes_get, st.atomics, st.barriers
                );
            }
        }
        if self.proxy_gets + self.proxy_puts > 0 {
            let _ = writeln!(
                s,
                "proxy: {} gets + {} puts served, {} B",
                self.proxy_gets, self.proxy_puts, self.proxy_bytes
            );
        }
        if self.progressed > 0 {
            let _ = writeln!(
                s,
                "target-side progress events: {} (one-sidedness violations)",
                self.progressed
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Design, RuntimeConfig};
    use crate::Domain;
    use pcie_sim::ClusterSpec;

    #[test]
    fn report_aggregates_counters_and_renders() {
        let m = ShmemMachine::build(
            ClusterSpec::internode_pair(),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        m.run(|pe| {
            let d = pe.shmalloc(2 << 20, Domain::Gpu);
            if pe.my_pe() == 0 {
                let s = pe.malloc_dev(2 << 20);
                pe.putmem(d, s, 64, 1); // direct GDR
                pe.putmem(d, s, 2 << 20, 1); // pipeline
                pe.quiet();
                let l = pe.malloc_dev(2 << 20);
                pe.getmem(l, d, 2 << 20, 1); // proxy
            }
            pe.barrier_all();
        });
        let r = m.report();
        assert_eq!(r.puts, 2);
        assert_eq!(r.gets, 1);
        assert_eq!(r.by_protocol[Protocol::DirectGdr as usize], 1);
        assert_eq!(r.by_protocol[Protocol::PipelineGdrWrite as usize], 1);
        assert_eq!(r.by_protocol[Protocol::ProxyPipeline as usize], 1);
        assert_eq!(r.proxy_gets, 1);
        let text = r.render();
        assert!(text.contains("direct-gdr"));
        assert!(text.contains("proxy-pipeline"));
        assert!(!text.contains("one-sidedness violations"));
        // per-PE breakdown: all the RMA happened on PE 0
        assert_eq!(r.per_pe.len(), 2);
        assert_eq!(r.per_pe[0].puts, 2);
        assert_eq!(r.per_pe[1].puts, 0);
        assert!(text.contains("pe/0: 2 puts"));
        assert!(text.contains("direct-gdr:1"), "{text}");
        assert!(text.contains("pipeline-gdr-write:1"), "{text}");
    }

    #[test]
    fn baseline_report_shows_progress_violations() {
        let m = ShmemMachine::build(
            ClusterSpec::internode_pair(),
            RuntimeConfig::tuned(Design::HostPipeline),
        );
        m.run(|pe| {
            let d = pe.shmalloc(1 << 20, Domain::Gpu);
            if pe.my_pe() == 0 {
                let s = pe.malloc_dev(1 << 20);
                pe.putmem(d, s, 1 << 20, 1);
                pe.quiet();
            }
            pe.barrier_all();
        });
        let r = m.report();
        assert!(r.progressed > 0);
        assert!(r.render().contains("one-sidedness violations"));
    }
}
