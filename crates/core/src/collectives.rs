//! Collective operations: dissemination barrier, binomial broadcast,
//! and small reductions — built from real flag writes and data movement
//! so their cost scales as on a real cluster.
//!
//! Fault tolerance: every collective is built from idempotent pieces —
//! monotonic generation flags (waiters use `>=` predicates), fixed-slot
//! data puts, whole-block RMA puts — so under an armed fault plan each
//! piece is simply *replayed* (bounded, with seeded backoff) when its
//! typed error surfaces: a lost flag write is re-sent, a timed-out wait
//! re-waits after re-driving the local side. Collectives therefore
//! complete byte-correct under flag loss, and only an exhausted replay
//! budget surfaces a [`TransferError`] through the `try_*` entry points
//! (the panicking spellings wrap them, matching the RMA convention).
//!
//! Fail-stop tolerance: every collective runs over the *surviving
//! member list* of the epoch-numbered membership view. When a
//! participant fail-stops mid-operation, the survivors' steps against
//! it surface [`TransferError::PeerDead`] (or time out waiting on its
//! flags), the view shrinks at the deterministic detection instant, and
//! [`Pe::with_reform`] re-runs the collective body over the shrunken
//! list — safe because every step is idempotent, and flags are keyed by
//! absolute contributor PE so nothing a dead PE delivered is ever
//! reinterpreted. Survivors' results stay byte-correct; a dead *root*
//! fails its rooted collective (broadcast/reduce) with `PeerDead`, as
//! no survivor can source the payload. Rejoined PEs are alive for
//! point-to-point traffic but are never re-admitted to collectives
//! within a run (their generation counters are behind; see
//! [`crate::membership`]).
//!
//! Partition tolerance: a quorum-fenced network split behaves like a
//! temporary fail-stop of the minority side. Majority members see
//! [`TransferError::Partitioned`] on steps against fenced peers, the
//! view drops the minority at the fence epoch, and [`Pe::with_reform`]
//! re-runs the body over the majority — byte-correct for the quorum
//! side. A fenced-minority caller fails fast with `Partitioned{pe: me}`
//! (degrading to a no-op in the infallible wrappers), so the minority
//! never contributes mid-fence writes: that is the no-split-brain
//! guarantee. At the heal the view *grows* back at a higher epoch;
//! `with_reform` re-forms on any list change, and because flag cells
//! carry monotonic generations with `>=` predicates, a healed PE's
//! stale pre-fence flags are inert — post-heal collectives start from a
//! fresh generation and stay byte-correct across the merge.

use crate::addr::{Pod, SymAddr, SymSlice};
use crate::error::TransferError;
use crate::pe::Pe;
use crate::sync::cells;
use pcie_sim::ProcId;
use sim_core::SimDuration;

/// Replay budget for one collective step (flag put + wait pair, data
/// put, or block put). Deliberately generous — several times the
/// per-post retry budget — because a step only consumes a replay after
/// a whole retry chain exhausted or a wait timed out; the budget exists
/// to bound the walk, not to model a realistic failure allowance.
const COLL_REPLAY_BUDGET: u32 = 16;

/// Reduction operators for the typed reductions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RedOp {
    Sum,
    Prod,
    Min,
    Max,
}

/// Element types usable in reductions.
pub trait Reducible: Pod + PartialOrd {
    fn combine(op: RedOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_reducible {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            fn combine(op: RedOp, a: Self, b: Self) -> Self {
                match op {
                    RedOp::Sum => a + b,
                    RedOp::Prod => a * b,
                    RedOp::Min => if b < a { b } else { a },
                    RedOp::Max => if b > a { b } else { a },
                }
            }
        }
    )*};
}

impl_reducible!(f32, f64, i32, i64, u32, u64);

impl Pe {
    /// Run one idempotent collective step, replaying it (with the fault
    /// plan's seeded backoff, salted by `salt`) on recoverable typed
    /// errors — exhausted retry chains, wait timeouts, partial
    /// deliveries. Unrecoverable errors (MR violations, capability
    /// faults) surface immediately.
    fn with_replay<T>(
        &self,
        salt: u64,
        mut step: impl FnMut() -> Result<T, TransferError>,
    ) -> Result<T, TransferError> {
        let plan = self.machine().cfg().faults;
        let mut replays: u32 = 0;
        loop {
            match step() {
                Ok(v) => return Ok(v),
                Err(
                    e @ (TransferError::RetriesExhausted { .. }
                    | TransferError::Timeout { .. }
                    | TransferError::PartialDelivery { .. }),
                ) => {
                    if replays >= COLL_REPLAY_BUDGET {
                        return Err(e);
                    }
                    replays += 1;
                    let backoff = plan.backoff_ns(salt, replays.min(8));
                    self.ctx().advance(SimDuration::from_ns(backoff));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Current collective member list. Cheap when no crash is armed:
    /// the full PE list, with zero membership queries.
    fn coll_members(&self) -> Vec<usize> {
        let ms = *self.machine().membership();
        if !ms.armed() {
            return (0..self.n_pes()).collect();
        }
        let now_ns = self.ctx().now().0 / sim_core::PS_PER_NS;
        ms.view_at(now_ns).member_list(self.n_pes())
    }

    /// Run a collective body over the surviving member list, re-forming
    /// it when the membership view shrinks mid-operation.
    ///
    /// A `PeerDead` or timeout from the body triggers a view
    /// recomputation: if the member list shrank, newly-evicted PEs get
    /// their lifecycle emitted and the body re-runs over the survivors
    /// — idempotent steps make the completed parts replay harmlessly,
    /// and `>=` flag predicates make stale pre-reform flags inert. An
    /// unchanged list propagates the error (it was not a fail-stop).
    /// The loop terminates because every list change consumes one of
    /// the finitely many scheduled membership events (crash evictions,
    /// partition fences, heals). The list is not monotonic: a heal
    /// grows it back, and the re-formed body simply runs over the
    /// merged view at the higher epoch. A caller that is itself dead —
    /// or was evicted and rejoined — fails fast with its own eviction
    /// epoch, and a caller on the fenced minority side of a split fails
    /// fast with [`TransferError::Partitioned`] naming itself: fenced
    /// PEs run no collective steps, which keeps the minority free of
    /// split-brain writes.
    fn with_reform(
        &self,
        mut body: impl FnMut(&[usize]) -> Result<(), TransferError>,
    ) -> Result<(), TransferError> {
        let m = self.machine().clone();
        let ms = *m.membership();
        let me = self.my_pe();
        let mut members = self.coll_members();
        loop {
            if ms.armed() {
                let now_ns = self.ctx().now().0 / sim_core::PS_PER_NS;
                if let Some(epoch) = ms.fenced_minority_epoch(me as u32, now_ns) {
                    return Err(TransferError::Partitioned { pe: me as u32, epoch });
                }
                if ms.crashed(me as u32, now_ns) || !members.contains(&me) {
                    return Err(TransferError::PeerDead {
                        pe: me as u32,
                        epoch: ms
                            .eviction_epoch(me as u32)
                            .unwrap_or_else(|| ms.epoch_at(now_ns)),
                    });
                }
            }
            match body(&members) {
                Ok(()) => return Ok(()),
                Err(
                    e @ (TransferError::PeerDead { .. }
                    | TransferError::Timeout { .. }
                    | TransferError::Partitioned { .. }),
                ) => {
                    if !ms.armed() {
                        return Err(e);
                    }
                    let now_ns = self.ctx().now().0 / sim_core::PS_PER_NS;
                    let next = ms.view_at(now_ns).member_list(self.n_pes());
                    if next == members {
                        return Err(e);
                    }
                    for &gone in members.iter().filter(|p| !next.contains(p)) {
                        // a fence-driven departure has no crash schedule
                        // — its lifecycle is emitted by note_partitions
                        if ms.crashed(gone as u32, now_ns) {
                            m.note_eviction(ProcId(gone as u32));
                        }
                    }
                    if m.cfg().faults.n_partitions > 0 {
                        m.note_partitions(self.ctx().now());
                    }
                    members = next;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fail-stop degradation rule for the infallible collective
    /// wrappers: a PE whose own crash (or eviction) surfaced as
    /// `PeerDead{pe: me}` has no activity left to fail — the collective
    /// completed for the survivors, and the dead caller's side
    /// degenerates to a local no-op instead of tearing the whole
    /// simulation down. A fenced-minority caller's `Partitioned{pe: me}`
    /// degrades the same way: the quorum side completed without it.
    /// Every other error still panics (the wrappers are the strict
    /// legacy API).
    fn fail_stop_ok(&self, what: &str, res: Result<(), TransferError>) {
        match res {
            Ok(()) => {}
            Err(TransferError::PeerDead { pe, .. }) if pe as usize == self.my_pe() => {}
            Err(TransferError::Partitioned { pe, .. }) if pe as usize == self.my_pe() => {}
            Err(e) => panic!("{what} failed: {e}"),
        }
    }

    /// `shmem_barrier_all`: quiet + dissemination barrier.
    pub fn barrier_all(&self) {
        let r = self.try_barrier_all();
        self.fail_stop_ok("barrier_all", r);
    }

    /// Fallible `shmem_barrier_all`: under an armed fault plan each
    /// dissemination round replays its flag put + wait pair on flag
    /// loss or wait timeout (the pair is one idempotent step — if my
    /// partner never saw my flag *or* I lost theirs, re-sending mine
    /// and re-waiting converges either way).
    pub fn try_barrier_all(&self) -> Result<(), TransferError> {
        let t0 = self.ctx().now();
        self.quiet();
        let m = self.machine().clone();
        let st = m.pe_state(self.proc_id());
        st.enter_library();
        st.stats.lock().barriers += 1;
        let gen = {
            let mut g = st.barrier_gen.lock();
            *g += 1;
            *g
        };
        let me = self.my_pe();
        let result = self.with_reform(|members| {
            let k = members.len();
            if k > 1 {
                let vi = members
                    .iter()
                    .position(|&p| p == me)
                    .expect("with_reform guarantees membership");
                let mut r = 0u32;
                while (1usize << r) < k {
                    let partner = members[(vi + (1 << r)) % k];
                    let cell = cells::BARRIER + 8 * r as u64;
                    self.with_replay(gen ^ (cell << 8) ^ me as u64, || {
                        m.try_sync_flag_put(
                            self.ctx(),
                            self.proc_id(),
                            ProcId(partner as u32),
                            cell,
                            gen,
                        )?;
                        m.try_sync_wait(
                            self.ctx(),
                            self.proc_id(),
                            ProcId(partner as u32),
                            cell,
                            |v| v >= gen,
                        )
                    })?;
                    r += 1;
                }
            }
            Ok(())
        });
        if result.is_ok() {
            let rec = m.obs();
            if rec.counters_on() {
                let t1 = self.ctx().now();
                rec.latency("barrier", 0, t1.since(t0));
                let id = self.proc_id();
                rec.span(
                    m.pe_track(id),
                    "barrier",
                    t0,
                    t1,
                    obs::Payload::Op {
                        op: "barrier",
                        protocol: "barrier",
                        size: 0,
                        src_pe: id.0,
                        dst_pe: id.0,
                        src_dev: false,
                        dst_dev: false,
                        same_node: true,
                        // collectives carry no correlation id (no single
                        // remote completion to flow to)
                        op_id: 0,
                    },
                );
            }
        }
        st.leave_library();
        result
    }

    fn next_coll_gen(&self) -> u64 {
        let st = self.machine().pe_state(self.proc_id());
        let mut g = st.coll_gen.lock();
        *g += 1;
        *g
    }

    /// Broadcast `len` bytes of the symmetric object `data` from `root`'s
    /// copy into every PE's copy (binomial tree over puts).
    pub fn broadcast(&self, data: SymAddr, len: u64, root: usize) {
        let r = self.try_broadcast(data, len, root);
        self.fail_stop_ok("broadcast", r);
    }

    /// Fallible broadcast: the data put, the flag put, and the
    /// receiver's wait each replay independently (all idempotent — the
    /// payload lands at a fixed destination, the flag is a generation
    /// counter).
    pub fn try_broadcast(&self, data: SymAddr, len: u64, root: usize) -> Result<(), TransferError> {
        let n = self.n_pes();
        let gen = self.next_coll_gen();
        if n == 1 {
            return Ok(());
        }
        let me = self.my_pe();
        let m = self.machine().clone();
        self.with_reform(|members| {
            let k = members.len();
            if k == 1 {
                return Ok(());
            }
            let Some(vroot) = members.iter().position(|&p| p == root) else {
                // the root is gone: no survivor can source the payload,
                // so the broadcast fails for everyone — as Partitioned
                // when it sits behind a quorum fence, PeerDead otherwise
                let now_ns = self.ctx().now().0 / sim_core::PS_PER_NS;
                if let Some(epoch) = m.membership().fenced_minority_epoch(root as u32, now_ns) {
                    return Err(TransferError::Partitioned { pe: root as u32, epoch });
                }
                return Err(TransferError::PeerDead {
                    pe: root as u32,
                    epoch: m.membership().eviction_epoch(root as u32).unwrap_or(0),
                });
            };
            let vi = members
                .iter()
                .position(|&p| p == me)
                .expect("with_reform guarantees membership");
            let vr = (vi + k - vroot) % k; // virtual rank: root is 0
            let mut rnd = 0u32;
            while (1usize << rnd) < k {
                let span = 1usize << rnd;
                let cell = cells::BCAST + 8 * rnd as u64;
                if vr < span {
                    let peer_vr = vr + span;
                    if peer_vr < k {
                        let peer = members[(peer_vr + vroot) % k];
                        let src = self.addr_of(data, me);
                        self.with_replay(gen ^ (cell << 8) ^ 0x01, || {
                            self.try_putmem(data, src, len, peer)
                        })?;
                        self.quiet();
                        self.with_replay(gen ^ (cell << 8) ^ 0x02, || {
                            m.try_sync_flag_put(
                                self.ctx(),
                                self.proc_id(),
                                ProcId(peer as u32),
                                cell,
                                gen,
                            )
                        })?;
                    }
                } else if vr < 2 * span {
                    // on timeout just re-wait: the sender replays its side
                    let parent = members[(vr - span + vroot) % k];
                    self.with_replay(gen ^ (cell << 8) ^ 0x03, || {
                        m.try_sync_wait(
                            self.ctx(),
                            self.proc_id(),
                            ProcId(parent as u32),
                            cell,
                            |v| v >= gen,
                        )
                    })?;
                }
                rnd += 1;
            }
            Ok(())
        })
    }

    /// Reduce a small symmetric vector to `root`'s copy of `dst` with
    /// operator `op`, then broadcast the result to every PE's copy.
    /// Payload per PE is limited to one reduce slot (256 bytes).
    pub fn reduce<T: Reducible>(
        &self,
        src: &SymSlice<T>,
        dst: &SymSlice<T>,
        op: RedOp,
        root: usize,
    ) {
        let r = self.try_reduce(src, dst, op, root);
        self.fail_stop_ok("reduce", r);
    }

    /// Fallible reduce: contributions replay their fixed-slot data put
    /// and arrival flag; the root re-waits on timeout.
    pub fn try_reduce<T: Reducible>(
        &self,
        src: &SymSlice<T>,
        dst: &SymSlice<T>,
        op: RedOp,
        root: usize,
    ) -> Result<(), TransferError> {
        assert!(
            src.byte_len() <= cells::SLOT,
            "reduce payload exceeds slot size ({} > {})",
            src.byte_len(),
            cells::SLOT
        );
        assert_eq!(src.len(), dst.len(), "reduce src/dst length mismatch");
        let n = self.n_pes();
        let me = self.my_pe();
        let m = self.machine().clone();
        let gen = self.next_coll_gen();
        if n == 1 {
            let v = self.read_sym(src);
            self.write_sym(dst, &v);
            return Ok(());
        }
        let gathered = self.with_reform(|members| {
            if me != root {
                if !members.contains(&root) {
                    // the root is gone: nobody can combine
                    let now_ns = self.ctx().now().0 / sim_core::PS_PER_NS;
                    if let Some(epoch) =
                        m.membership().fenced_minority_epoch(root as u32, now_ns)
                    {
                        return Err(TransferError::Partitioned { pe: root as u32, epoch });
                    }
                    return Err(TransferError::PeerDead {
                        pe: root as u32,
                        epoch: m.membership().eviction_epoch(root as u32).unwrap_or(0),
                    });
                }
                // ship my contribution into root's slot for me, then flag
                let my_copy = self.addr_of(src.addr(), me);
                self.with_replay(gen ^ 0x10 ^ me as u64, || {
                    m.try_sync_data_put(
                        self.ctx(),
                        self.proc_id(),
                        ProcId(root as u32),
                        cells::REDUCE_DATA + cells::SLOT * me as u64,
                        my_copy,
                        src.byte_len(),
                    )
                })?;
                self.quiet();
                self.with_replay(gen ^ 0x20 ^ me as u64, || {
                    m.try_sync_flag_put(
                        self.ctx(),
                        self.proc_id(),
                        ProcId(root as u32),
                        cells::REDUCE_FLAGS + 8 * me as u64,
                        gen,
                    )
                })?;
            } else {
                // gather: wait for every surviving contribution (slots
                // and flags are keyed by absolute contributor PE, so a
                // re-formed gather never reinterprets a dead PE's slot)
                let mut acc = self.read_sym(src);
                for &pe in members {
                    if pe == root {
                        continue;
                    }
                    self.with_replay(gen ^ 0x30 ^ pe as u64, || {
                        m.try_sync_wait(
                            self.ctx(),
                            self.proc_id(),
                            ProcId(pe as u32),
                            cells::REDUCE_FLAGS + 8 * pe as u64,
                            |v| v >= gen,
                        )
                    })?;
                    let slot = m.sync_cell(
                        self.proc_id(),
                        cells::REDUCE_DATA + cells::SLOT * pe as u64,
                    );
                    let bytes = self.read_raw(slot, src.byte_len());
                    let vals = T::from_bytes(&bytes);
                    for (a, v) in acc.iter_mut().zip(vals) {
                        *a = T::combine(op, *a, v);
                    }
                }
                self.write_sym(dst, &acc);
            }
            Ok(())
        });
        if let Err(e) = gathered {
            // peers that completed the gather run a result broadcast
            // next, which consumes one generation on every member —
            // consume it here too, so a fenced caller that merges back
            // at the heal stays generation-aligned with the quorum side
            let _ = self.next_coll_gen();
            return Err(e);
        }
        // result distribution
        self.try_broadcast(dst.addr(), dst.byte_len(), root)
    }

    /// Sum-reduce to root (kept as the common spelling).
    pub fn reduce_sum_f64(&self, src: &SymSlice<f64>, dst: &SymSlice<f64>, root: usize) {
        self.reduce(src, dst, RedOp::Sum, root);
    }

    /// Convenience: allreduce of a small f64 vector.
    pub fn allreduce_sum_f64(&self, src: &SymSlice<f64>, dst: &SymSlice<f64>) {
        self.reduce(src, dst, RedOp::Sum, 0);
    }

    /// `shmem_fcollect`: every PE contributes its `src` block; every PE
    /// ends with all blocks, in PE order, in its copy of `dest`
    /// (`dest.len() == n_pes * src.len()`).
    pub fn fcollect<T: Pod>(&self, dest: &SymSlice<T>, src: &SymSlice<T>) {
        let r = self.try_fcollect(dest, src);
        self.fail_stop_ok("fcollect", r);
    }

    /// Fallible fcollect: each block put, arrival flag, and wait
    /// replays independently.
    pub fn try_fcollect<T: Pod>(
        &self,
        dest: &SymSlice<T>,
        src: &SymSlice<T>,
    ) -> Result<(), TransferError> {
        let n = self.n_pes();
        let me = self.my_pe();
        assert_eq!(dest.len(), n * src.len(), "fcollect geometry");
        let m = self.machine().clone();
        let gen = self.next_coll_gen();
        self.with_reform(|members| {
            // put my block into every survivor's dest at block `me`,
            // then flag (block offsets stay keyed by absolute PE)
            let my_copy = self.addr_of(src.addr(), me);
            for &t in members {
                if t == me {
                    self.write_sym(&dest.slice(me * src.len(), src.len()), &self.read_sym(src));
                } else {
                    self.with_replay(gen ^ 0x40 ^ ((me * n + t) as u64), || {
                        self.try_putmem(dest.at(me * src.len()), my_copy, src.byte_len(), t)
                    })?;
                }
            }
            self.quiet();
            for &t in members {
                if t != me {
                    self.with_replay(gen ^ 0x50 ^ ((me * n + t) as u64), || {
                        m.try_sync_flag_put(
                            self.ctx(),
                            self.proc_id(),
                            ProcId(t as u32),
                            cells::COLL_FLAGS + 8 * me as u64,
                            gen,
                        )
                    })?;
                }
            }
            // wait for every other survivor's block
            for &s_pe in members {
                if s_pe != me {
                    self.with_replay(gen ^ 0x60 ^ s_pe as u64, || {
                        m.try_sync_wait(
                            self.ctx(),
                            self.proc_id(),
                            ProcId(s_pe as u32),
                            cells::COLL_FLAGS + 8 * s_pe as u64,
                            |v| v >= gen,
                        )
                    })?;
                }
            }
            Ok(())
        })
    }

    /// `shmem_alltoall`: PE `i`'s block `j` of `src` lands in PE `j`'s
    /// block `i` of `dest` (`src.len() == dest.len() == n_pes * per`).
    pub fn alltoall<T: Pod>(&self, dest: &SymSlice<T>, src: &SymSlice<T>, per: usize) {
        let r = self.try_alltoall(dest, src, per);
        self.fail_stop_ok("alltoall", r);
    }

    /// Fallible alltoall: same replay structure as fcollect.
    pub fn try_alltoall<T: Pod>(
        &self,
        dest: &SymSlice<T>,
        src: &SymSlice<T>,
        per: usize,
    ) -> Result<(), TransferError> {
        let n = self.n_pes();
        let me = self.my_pe();
        assert_eq!(src.len(), n * per, "alltoall src geometry");
        assert_eq!(dest.len(), n * per, "alltoall dest geometry");
        let m = self.machine().clone();
        let gen = self.next_coll_gen();
        let per_bytes = (per * T::SIZE) as u64;
        self.with_reform(|members| {
            for &j in members {
                let block = self.addr_of(src.at(j * per), me);
                if j == me {
                    let vals = self.read_sym(&src.slice(me * per, per));
                    self.write_sym(&dest.slice(me * per, per), &vals);
                } else {
                    self.with_replay(gen ^ 0x70 ^ ((me * n + j) as u64), || {
                        self.try_putmem(dest.at(me * per), block, per_bytes, j)
                    })?;
                }
            }
            self.quiet();
            for &j in members {
                if j != me {
                    self.with_replay(gen ^ 0x80 ^ ((me * n + j) as u64), || {
                        m.try_sync_flag_put(
                            self.ctx(),
                            self.proc_id(),
                            ProcId(j as u32),
                            cells::COLL_FLAGS + 8 * me as u64,
                            gen,
                        )
                    })?;
                }
            }
            for &s_pe in members {
                if s_pe != me {
                    self.with_replay(gen ^ 0x90 ^ s_pe as u64, || {
                        m.try_sync_wait(
                            self.ctx(),
                            self.proc_id(),
                            ProcId(s_pe as u32),
                            cells::COLL_FLAGS + 8 * s_pe as u64,
                            |v| v >= gen,
                        )
                    })?;
                }
            }
            Ok(())
        })
    }
}
