//! Collective operations: dissemination barrier, binomial broadcast,
//! and small reductions — built from real flag writes and data movement
//! so their cost scales as on a real cluster.
//!
//! Fault tolerance: every collective is built from idempotent pieces —
//! monotonic generation flags (waiters use `>=` predicates), fixed-slot
//! data puts, whole-block RMA puts — so under an armed fault plan each
//! piece is simply *replayed* (bounded, with seeded backoff) when its
//! typed error surfaces: a lost flag write is re-sent, a timed-out wait
//! re-waits after re-driving the local side. Collectives therefore
//! complete byte-correct under flag loss, and only an exhausted replay
//! budget surfaces a [`TransferError`] through the `try_*` entry points
//! (the panicking spellings wrap them, matching the RMA convention).

use crate::addr::{Pod, SymAddr, SymSlice};
use crate::error::TransferError;
use crate::pe::Pe;
use crate::sync::cells;
use pcie_sim::ProcId;
use sim_core::SimDuration;

/// Replay budget for one collective step (flag put + wait pair, data
/// put, or block put). Deliberately generous — several times the
/// per-post retry budget — because a step only consumes a replay after
/// a whole retry chain exhausted or a wait timed out; the budget exists
/// to bound the walk, not to model a realistic failure allowance.
const COLL_REPLAY_BUDGET: u32 = 16;

/// Reduction operators for the typed reductions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RedOp {
    Sum,
    Prod,
    Min,
    Max,
}

/// Element types usable in reductions.
pub trait Reducible: Pod + PartialOrd {
    fn combine(op: RedOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_reducible {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            fn combine(op: RedOp, a: Self, b: Self) -> Self {
                match op {
                    RedOp::Sum => a + b,
                    RedOp::Prod => a * b,
                    RedOp::Min => if b < a { b } else { a },
                    RedOp::Max => if b > a { b } else { a },
                }
            }
        }
    )*};
}

impl_reducible!(f32, f64, i32, i64, u32, u64);

impl Pe {
    /// Run one idempotent collective step, replaying it (with the fault
    /// plan's seeded backoff, salted by `salt`) on recoverable typed
    /// errors — exhausted retry chains, wait timeouts, partial
    /// deliveries. Unrecoverable errors (MR violations, capability
    /// faults) surface immediately.
    fn with_replay<T>(
        &self,
        salt: u64,
        mut step: impl FnMut() -> Result<T, TransferError>,
    ) -> Result<T, TransferError> {
        let plan = self.machine().cfg().faults;
        let mut replays: u32 = 0;
        loop {
            match step() {
                Ok(v) => return Ok(v),
                Err(
                    e @ (TransferError::RetriesExhausted { .. }
                    | TransferError::Timeout { .. }
                    | TransferError::PartialDelivery { .. }),
                ) => {
                    if replays >= COLL_REPLAY_BUDGET {
                        return Err(e);
                    }
                    replays += 1;
                    let backoff = plan.backoff_ns(salt, replays.min(8));
                    self.ctx().advance(SimDuration::from_ns(backoff));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// `shmem_barrier_all`: quiet + dissemination barrier.
    pub fn barrier_all(&self) {
        self.try_barrier_all()
            .unwrap_or_else(|e| panic!("barrier_all failed: {e}"));
    }

    /// Fallible `shmem_barrier_all`: under an armed fault plan each
    /// dissemination round replays its flag put + wait pair on flag
    /// loss or wait timeout (the pair is one idempotent step — if my
    /// partner never saw my flag *or* I lost theirs, re-sending mine
    /// and re-waiting converges either way).
    pub fn try_barrier_all(&self) -> Result<(), TransferError> {
        let t0 = self.ctx().now();
        self.quiet();
        let m = self.machine().clone();
        let st = m.pe_state(self.proc_id());
        st.enter_library();
        st.stats.lock().barriers += 1;
        let gen = {
            let mut g = st.barrier_gen.lock();
            *g += 1;
            *g
        };
        let n = self.n_pes();
        let result = (|| {
            if n > 1 {
                let me = self.my_pe();
                let mut r = 0u32;
                while (1usize << r) < n {
                    let partner = (me + (1 << r)) % n;
                    let cell = cells::BARRIER + 8 * r as u64;
                    self.with_replay(gen ^ (cell << 8) ^ me as u64, || {
                        m.try_sync_flag_put(
                            self.ctx(),
                            self.proc_id(),
                            ProcId(partner as u32),
                            cell,
                            gen,
                        )?;
                        m.try_sync_wait(self.ctx(), self.proc_id(), cell, |v| v >= gen)
                    })?;
                    r += 1;
                }
            }
            Ok(())
        })();
        if result.is_ok() {
            let rec = m.obs();
            if rec.counters_on() {
                let t1 = self.ctx().now();
                rec.latency("barrier", 0, t1.since(t0));
                let id = self.proc_id();
                rec.span(
                    m.pe_track(id),
                    "barrier",
                    t0,
                    t1,
                    obs::Payload::Op {
                        op: "barrier",
                        protocol: "barrier",
                        size: 0,
                        src_pe: id.0,
                        dst_pe: id.0,
                        src_dev: false,
                        dst_dev: false,
                        same_node: true,
                        // collectives carry no correlation id (no single
                        // remote completion to flow to)
                        op_id: 0,
                    },
                );
            }
        }
        st.leave_library();
        result
    }

    fn next_coll_gen(&self) -> u64 {
        let st = self.machine().pe_state(self.proc_id());
        let mut g = st.coll_gen.lock();
        *g += 1;
        *g
    }

    /// Broadcast `len` bytes of the symmetric object `data` from `root`'s
    /// copy into every PE's copy (binomial tree over puts).
    pub fn broadcast(&self, data: SymAddr, len: u64, root: usize) {
        self.try_broadcast(data, len, root)
            .unwrap_or_else(|e| panic!("broadcast failed: {e}"));
    }

    /// Fallible broadcast: the data put, the flag put, and the
    /// receiver's wait each replay independently (all idempotent — the
    /// payload lands at a fixed destination, the flag is a generation
    /// counter).
    pub fn try_broadcast(&self, data: SymAddr, len: u64, root: usize) -> Result<(), TransferError> {
        let n = self.n_pes();
        let gen = self.next_coll_gen();
        if n == 1 {
            return Ok(());
        }
        let me = self.my_pe();
        let m = self.machine().clone();
        let vr = (me + n - root) % n; // virtual rank: root is 0
        let mut k = 0u32;
        while (1usize << k) < n {
            let span = 1usize << k;
            let cell = cells::BCAST + 8 * k as u64;
            if vr < span {
                let peer_vr = vr + span;
                if peer_vr < n {
                    let peer = (peer_vr + root) % n;
                    let src = self.addr_of(data, me);
                    self.with_replay(gen ^ (cell << 8) ^ 0x01, || {
                        self.try_putmem(data, src, len, peer)
                    })?;
                    self.quiet();
                    self.with_replay(gen ^ (cell << 8) ^ 0x02, || {
                        m.try_sync_flag_put(
                            self.ctx(),
                            self.proc_id(),
                            ProcId(peer as u32),
                            cell,
                            gen,
                        )
                    })?;
                }
            } else if vr < 2 * span {
                // on timeout just re-wait: the sender replays its side
                self.with_replay(gen ^ (cell << 8) ^ 0x03, || {
                    m.try_sync_wait(self.ctx(), self.proc_id(), cell, |v| v >= gen)
                })?;
            }
            k += 1;
        }
        Ok(())
    }

    /// Reduce a small symmetric vector to `root`'s copy of `dst` with
    /// operator `op`, then broadcast the result to every PE's copy.
    /// Payload per PE is limited to one reduce slot (256 bytes).
    pub fn reduce<T: Reducible>(
        &self,
        src: &SymSlice<T>,
        dst: &SymSlice<T>,
        op: RedOp,
        root: usize,
    ) {
        self.try_reduce(src, dst, op, root)
            .unwrap_or_else(|e| panic!("reduce failed: {e}"));
    }

    /// Fallible reduce: contributions replay their fixed-slot data put
    /// and arrival flag; the root re-waits on timeout.
    pub fn try_reduce<T: Reducible>(
        &self,
        src: &SymSlice<T>,
        dst: &SymSlice<T>,
        op: RedOp,
        root: usize,
    ) -> Result<(), TransferError> {
        assert!(
            src.byte_len() <= cells::SLOT,
            "reduce payload exceeds slot size ({} > {})",
            src.byte_len(),
            cells::SLOT
        );
        assert_eq!(src.len(), dst.len(), "reduce src/dst length mismatch");
        let n = self.n_pes();
        let me = self.my_pe();
        let m = self.machine().clone();
        let gen = self.next_coll_gen();
        if n == 1 {
            let v = self.read_sym(src);
            self.write_sym(dst, &v);
            return Ok(());
        }
        if me != root {
            // ship my contribution into root's slot for me, then flag
            let my_copy = self.addr_of(src.addr(), me);
            self.with_replay(gen ^ 0x10 ^ me as u64, || {
                m.try_sync_data_put(
                    self.ctx(),
                    self.proc_id(),
                    ProcId(root as u32),
                    cells::REDUCE_DATA + cells::SLOT * me as u64,
                    my_copy,
                    src.byte_len(),
                )
            })?;
            self.quiet();
            self.with_replay(gen ^ 0x20 ^ me as u64, || {
                m.try_sync_flag_put(
                    self.ctx(),
                    self.proc_id(),
                    ProcId(root as u32),
                    cells::REDUCE_FLAGS + 8 * me as u64,
                    gen,
                )
            })?;
        } else {
            // gather: wait for every contribution
            let mut acc = self.read_sym(src);
            for pe in 0..n {
                if pe == root {
                    continue;
                }
                self.with_replay(gen ^ 0x30 ^ pe as u64, || {
                    m.try_sync_wait(
                        self.ctx(),
                        self.proc_id(),
                        cells::REDUCE_FLAGS + 8 * pe as u64,
                        |v| v >= gen,
                    )
                })?;
                let slot = m.sync_cell(
                    self.proc_id(),
                    cells::REDUCE_DATA + cells::SLOT * pe as u64,
                );
                let bytes = self.read_raw(slot, src.byte_len());
                let vals = T::from_bytes(&bytes);
                for (a, v) in acc.iter_mut().zip(vals) {
                    *a = T::combine(op, *a, v);
                }
            }
            self.write_sym(dst, &acc);
        }
        // result distribution
        self.try_broadcast(dst.addr(), dst.byte_len(), root)
    }

    /// Sum-reduce to root (kept as the common spelling).
    pub fn reduce_sum_f64(&self, src: &SymSlice<f64>, dst: &SymSlice<f64>, root: usize) {
        self.reduce(src, dst, RedOp::Sum, root);
    }

    /// Convenience: allreduce of a small f64 vector.
    pub fn allreduce_sum_f64(&self, src: &SymSlice<f64>, dst: &SymSlice<f64>) {
        self.reduce(src, dst, RedOp::Sum, 0);
    }

    /// `shmem_fcollect`: every PE contributes its `src` block; every PE
    /// ends with all blocks, in PE order, in its copy of `dest`
    /// (`dest.len() == n_pes * src.len()`).
    pub fn fcollect<T: Pod>(&self, dest: &SymSlice<T>, src: &SymSlice<T>) {
        self.try_fcollect(dest, src)
            .unwrap_or_else(|e| panic!("fcollect failed: {e}"));
    }

    /// Fallible fcollect: each block put, arrival flag, and wait
    /// replays independently.
    pub fn try_fcollect<T: Pod>(
        &self,
        dest: &SymSlice<T>,
        src: &SymSlice<T>,
    ) -> Result<(), TransferError> {
        let n = self.n_pes();
        let me = self.my_pe();
        assert_eq!(dest.len(), n * src.len(), "fcollect geometry");
        let m = self.machine().clone();
        let gen = self.next_coll_gen();
        // put my block into everyone's dest at block `me`, then flag
        let my_copy = self.addr_of(src.addr(), me);
        for t in 0..n {
            if t == me {
                self.write_sym(&dest.slice(me * src.len(), src.len()), &self.read_sym(src));
            } else {
                self.with_replay(gen ^ 0x40 ^ ((me * n + t) as u64), || {
                    self.try_putmem(dest.at(me * src.len()), my_copy, src.byte_len(), t)
                })?;
            }
        }
        self.quiet();
        for t in 0..n {
            if t != me {
                self.with_replay(gen ^ 0x50 ^ ((me * n + t) as u64), || {
                    m.try_sync_flag_put(
                        self.ctx(),
                        self.proc_id(),
                        ProcId(t as u32),
                        cells::COLL_FLAGS + 8 * me as u64,
                        gen,
                    )
                })?;
            }
        }
        // wait for every other PE's block
        for s_pe in 0..n {
            if s_pe != me {
                self.with_replay(gen ^ 0x60 ^ s_pe as u64, || {
                    m.try_sync_wait(
                        self.ctx(),
                        self.proc_id(),
                        cells::COLL_FLAGS + 8 * s_pe as u64,
                        |v| v >= gen,
                    )
                })?;
            }
        }
        Ok(())
    }

    /// `shmem_alltoall`: PE `i`'s block `j` of `src` lands in PE `j`'s
    /// block `i` of `dest` (`src.len() == dest.len() == n_pes * per`).
    pub fn alltoall<T: Pod>(&self, dest: &SymSlice<T>, src: &SymSlice<T>, per: usize) {
        self.try_alltoall(dest, src, per)
            .unwrap_or_else(|e| panic!("alltoall failed: {e}"));
    }

    /// Fallible alltoall: same replay structure as fcollect.
    pub fn try_alltoall<T: Pod>(
        &self,
        dest: &SymSlice<T>,
        src: &SymSlice<T>,
        per: usize,
    ) -> Result<(), TransferError> {
        let n = self.n_pes();
        let me = self.my_pe();
        assert_eq!(src.len(), n * per, "alltoall src geometry");
        assert_eq!(dest.len(), n * per, "alltoall dest geometry");
        let m = self.machine().clone();
        let gen = self.next_coll_gen();
        let per_bytes = (per * T::SIZE) as u64;
        for j in 0..n {
            let block = self.addr_of(src.at(j * per), me);
            if j == me {
                let vals = self.read_sym(&src.slice(me * per, per));
                self.write_sym(&dest.slice(me * per, per), &vals);
            } else {
                self.with_replay(gen ^ 0x70 ^ ((me * n + j) as u64), || {
                    self.try_putmem(dest.at(me * per), block, per_bytes, j)
                })?;
            }
        }
        self.quiet();
        for j in 0..n {
            if j != me {
                self.with_replay(gen ^ 0x80 ^ ((me * n + j) as u64), || {
                    m.try_sync_flag_put(
                        self.ctx(),
                        self.proc_id(),
                        ProcId(j as u32),
                        cells::COLL_FLAGS + 8 * me as u64,
                        gen,
                    )
                })?;
            }
        }
        for s_pe in 0..n {
            if s_pe != me {
                self.with_replay(gen ^ 0x90 ^ s_pe as u64, || {
                    m.try_sync_wait(
                        self.ctx(),
                        self.proc_id(),
                        cells::COLL_FLAGS + 8 * s_pe as u64,
                        |v| v >= gen,
                    )
                })?;
            }
        }
        Ok(())
    }
}
