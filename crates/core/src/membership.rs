//! Virtual-time membership: fail-stop detection, epoch-numbered views,
//! and PE rejoin — derived entirely from the fault plan's crash
//! schedule.
//!
//! The detection protocol piggybacks heartbeats on the sync-flag
//! traffic every PE already produces: each flag write refreshes the
//! writer's lease, and a crashed PE stops writing at its `at_ns`, so
//! survivors observe the lease expire after [`MISSED_BEATS`] heartbeat
//! periods — the detection bound is
//!
//! ```text
//! DETECT_BOUND_NS = HEARTBEAT_PERIOD_NS × MISSED_BEATS
//! ```
//!
//! Because lease expiry is a deterministic virtual-time instant, the
//! membership view is a *pure function* of `(fault plan, now)`: every
//! survivor computes the same epoch-numbered view with no extra
//! messages, which is exactly what the chaos suite's view-convergence
//! oracle checks end to end. An op against a dead peer blocks until the
//! detection instant (the caller cannot know the peer is dead before
//! its lease expires) and then fails as
//! [`crate::TransferError::PeerDead`] carrying the eviction epoch.
//!
//! Two liveness notions are deliberately distinct:
//!
//! - **alive** — point-to-point reachability. A rejoined PE becomes
//!   alive again at its rejoin instant (after symmetric-heap
//!   re-registration and a breaker warm-up probe).
//! - **collective member** — participation in barrier/bcast/reduce/
//!   fcollect/alltoall. The member set only shrinks within a run: a
//!   rejoined PE is *not* re-admitted to collectives, because its
//!   generation counters are behind the survivors' and re-admitting it
//!   mid-generation would deadlock the `>=`-predicate flag waits.
//!
//! A crash whose rejoin lands before the lease would have expired is a
//! transparent blip: no survivor ever detects it, so no eviction or
//! epoch bump occurs (ops issued against the peer inside the blip
//! simply block until the rejoin instant).
//!
//! ## Network partitions and quorum fencing
//!
//! A `partition=split:...` fault severs every link between the masked
//! PEs and the rest for its window. Lease expiry detects the split
//! exactly [`DETECT_BOUND_NS`] after it starts (splits shorter than the
//! bound are transparent blips, like short crashes), at which point the
//! view **fences**: the side holding quorum — strictly more than half
//! the PEs, ties broken toward the side containing PE 0 — keeps
//! operating at a bumped epoch with the minority PEs removed from
//! `alive`/`members`, while every op issued *by* a minority PE (or by a
//! majority PE *at* a minority PE) fails as
//! [`crate::TransferError::Partitioned`] carrying the fence epoch. The
//! minority side performs no writes while fenced, so there is no
//! split-brain state to reconcile. [`HEAL_BOUND_NS`] (one heartbeat)
//! after the window ends, the views **heal**: the minority PEs rejoin
//! `alive` *and* `members` at a higher epoch — unlike crash rejoin,
//! which never re-admits a PE to collectives, a healed minority PE
//! wrote nothing while fenced, so its sync-flag generation counters are
//! simply behind and the monotonic `>=` wait predicates reconcile them
//! on the next collective round. Quorum is computed over the static PE
//! set; combining a split and a crash of the same PE in one plan is
//! resolved by never re-admitting an evicted PE at heal.
//!
//! A `partition=cut:...` fault never reaches this layer's views: only
//! the direct/GDR fabric of one ordered pair is severed, the proxy and
//! host-staged paths stay reachable, and protocol selection reroutes
//! (see `crates/core/src/protocols.rs`).

use faults::{FaultPlan, PartitionKind, MAX_CRASHES, MAX_PARTITIONS};

/// Virtual-time heartbeat period of the piggybacked lease protocol.
pub const HEARTBEAT_PERIOD_NS: u64 = 50_000;
/// Consecutive missed heartbeats that expire a lease.
pub const MISSED_BEATS: u64 = 3;
/// Bounded detection latency: a crash at `t` is detected by every
/// survivor at exactly `t + DETECT_BOUND_NS`.
pub const DETECT_BOUND_NS: u64 = HEARTBEAT_PERIOD_NS * MISSED_BEATS;

/// Virtual-time cost of re-registering a rejoining PE's symmetric heaps
/// with the fabric (descriptor re-exchange + MR re-registration),
/// charged to the first op that touches the rejoined peer.
pub const REJOIN_REREG_NS: u64 = 25_000;

/// Duration of the warm-up probe a rejoined peer's breaker demands
/// before regular traffic resumes (one modeled probe round-trip).
pub const REJOIN_PROBE_NS: u64 = 5_000;

/// Delay between a split window ending (links physically restored) and
/// the fenced views merging back together: one heartbeat round for the
/// minority's leases to refresh on every majority PE. Ops across the
/// old split keep failing inside this interval — the gap is the
/// heal-convergence metric gdrprof reports.
pub const HEAL_BOUND_NS: u64 = HEARTBEAT_PERIOD_NS;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EventKind {
    Evict,
    Rejoin,
    /// Quorum fence applied: the masked minority leaves `alive`/`members`.
    Fence,
    /// Fenced views merged: the masked minority rejoins `alive`/`members`.
    Heal,
}

/// One membership transition, at a deterministic virtual instant.
/// `mask` is the minority-side bitmask for fence/heal transitions and
/// 0 for crash transitions (which carry the single `pe`).
#[derive(Clone, Copy, Debug)]
struct Event {
    ts_ns: u64,
    pe: u32,
    kind: EventKind,
    mask: u64,
}

/// The compiled schedule of one split partition: deterministic fence
/// and heal instants with the epochs they stamp.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitSchedule {
    /// Bitmask of the PEs on the non-quorum side.
    pub minority: u64,
    /// Instant the quorum fence lands (split start + detection bound).
    pub fence_ns: u64,
    /// Instant the views merge back (split end + [`HEAL_BOUND_NS`]).
    pub heal_ns: u64,
    /// View epoch in force right after the fence was applied — the
    /// epoch a [`crate::TransferError::Partitioned`] carries.
    pub fence_epoch: u64,
    /// View epoch in force right after the heal merge.
    pub heal_epoch: u64,
}

/// How a partition affects one op, decided at issue time (see
/// [`Membership::partition_outcome`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionOutcome {
    /// The pair is severed by a split too short for any lease to
    /// expire (a transparent blip): the op blocks until the window
    /// ends, then proceeds normally.
    BlockUntil(u64),
    /// The op fails as `Partitioned { pe, epoch }` at `at_ns` (the
    /// fence instant; already in the past once the fence is up — then
    /// it fails immediately).
    FailAt { at_ns: u64, pe: u32, epoch: u64 },
}

/// The epoch-numbered membership view at one virtual instant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct View {
    /// Number of membership transitions applied so far. Starts at 0;
    /// every eviction and every rejoin bumps it.
    pub epoch: u64,
    /// Bitmask of PEs reachable for point-to-point ops.
    pub alive: u64,
    /// Bitmask of collective members (monotonically shrinking).
    pub members: u64,
}

impl View {
    pub fn is_alive(&self, pe: u32) -> bool {
        self.alive & (1u64 << pe) != 0
    }

    pub fn is_member(&self, pe: u32) -> bool {
        self.members & (1u64 << pe) != 0
    }

    /// Collective member list, ascending PE order.
    pub fn member_list(&self, n_pes: usize) -> Vec<usize> {
        (0..n_pes).filter(|&p| self.is_member(p as u32)).collect()
    }
}

/// The membership schedule of one job: the crash and split-partition
/// plan compiled into a sorted list of evict/rejoin/fence/heal events.
/// `Copy`, no heap — it lives inside [`crate::ShmemMachine`] for the
/// whole run.
#[derive(Clone, Copy, Debug)]
pub struct Membership {
    n_pes: u32,
    plan: FaultPlan,
    events: [Event; 2 * MAX_CRASHES + 2 * MAX_PARTITIONS],
    n_events: usize,
    splits: [SplitSchedule; MAX_PARTITIONS],
    n_splits: usize,
}

impl Membership {
    pub fn new(plan: &FaultPlan, n_pes: usize) -> Membership {
        let none = Event { ts_ns: 0, pe: 0, kind: EventKind::Evict, mask: 0 };
        let mut ev = [none; 2 * MAX_CRASHES + 2 * MAX_PARTITIONS];
        let mut n = 0;
        if plan.n_crashes > 0 || plan.n_partitions > 0 {
            assert!(n_pes <= 64, "membership views are 64-bit PE masks");
        }
        for c in plan.crashes() {
            let detect = c.at_ns + DETECT_BOUND_NS;
            if c.rejoin_ns != 0 && c.rejoin_ns <= detect {
                // transparent blip: back before any lease expired
                continue;
            }
            ev[n] = Event { ts_ns: detect, pe: c.pe, kind: EventKind::Evict, mask: 0 };
            n += 1;
            if c.rejoin_ns != 0 {
                ev[n] = Event { ts_ns: c.rejoin_ns, pe: c.pe, kind: EventKind::Rejoin, mask: 0 };
                n += 1;
            }
        }
        let full = if n_pes == 64 { u64::MAX } else { (1u64 << n_pes) - 1 };
        let mut raw_splits = [(0u64, 0u64, 0u64); MAX_PARTITIONS];
        let mut n_splits = 0;
        for p in plan.partitions() {
            if p.kind != PartitionKind::Split {
                continue; // cuts never reach the view layer
            }
            if p.end_ns - p.start_ns < DETECT_BOUND_NS {
                // transparent blip: healed before any lease expired
                continue;
            }
            let minority = Self::minority_of(p.mask & full, full);
            if minority == 0 {
                continue; // degenerate: everything on one side
            }
            let fence = p.start_ns + DETECT_BOUND_NS;
            let heal = p.end_ns + HEAL_BOUND_NS;
            let rep = minority.trailing_zeros();
            ev[n] = Event { ts_ns: fence, pe: rep, kind: EventKind::Fence, mask: minority };
            n += 1;
            ev[n] = Event { ts_ns: heal, pe: rep, kind: EventKind::Heal, mask: minority };
            n += 1;
            raw_splits[n_splits] = (minority, fence, heal);
            n_splits += 1;
        }
        ev[..n].sort_by_key(|e| (e.ts_ns, e.pe));
        let mut ms = Membership {
            n_pes: n_pes as u32,
            plan: *plan,
            events: ev,
            n_events: n,
            splits: [SplitSchedule::default(); MAX_PARTITIONS],
            n_splits,
        };
        // stamp each schedule with the epochs its transitions land at
        for (i, &(minority, fence, heal)) in raw_splits[..n_splits].iter().enumerate() {
            ms.splits[i] = SplitSchedule {
                minority,
                fence_ns: fence,
                heal_ns: heal,
                fence_epoch: ms.epoch_at(fence),
                heal_epoch: ms.epoch_at(heal),
            };
        }
        ms
    }

    /// Which side of a two-sided split lacks quorum. Quorum is strictly
    /// more than half of the static PE set; an exact tie goes to the
    /// side containing PE 0 (deterministic, so every PE agrees without
    /// messages). Returns the minority bitmask, or 0 when the split is
    /// degenerate (one side empty).
    fn minority_of(split_mask: u64, full: u64) -> u64 {
        let a = split_mask & full;
        let b = full & !a;
        if a == 0 || b == 0 {
            return 0;
        }
        match a.count_ones().cmp(&b.count_ones()) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal => {
                if a & 1 != 0 {
                    b // PE 0 is on side a: a holds quorum
                } else {
                    a
                }
            }
        }
    }

    /// Cheap hot-path gate: false means no crash and no partition is
    /// scheduled and every membership query short-circuits (unfaulted
    /// runs must not draw).
    pub fn armed(&self) -> bool {
        self.plan.n_crashes > 0 || self.plan.n_partitions > 0
    }

    /// Compiled split-partition schedules (fence/heal instants and
    /// epochs), in plan order.
    pub fn split_schedules(&self) -> &[SplitSchedule] {
        &self.splits[..self.n_splits]
    }

    /// How a point-to-point op from `me` to `peer`, issued at `now_ns`,
    /// is affected by split partitions. `None` = unaffected: no split
    /// severs the pair and neither end is inside a quorum fence.
    ///
    /// While a fence is up (`fence_ns <= now < heal_ns`), *every* op
    /// issued by a minority PE fails (the side lacks quorum — this is
    /// what prevents split-brain writes, even minority-internal ones),
    /// and a majority op at a minority peer fails too (unreachable).
    /// The reported `pe` is the fenced end: the caller itself when the
    /// caller is minority, else the peer.
    pub fn partition_outcome(&self, me: u32, peer: u32, now_ns: u64) -> Option<PartitionOutcome> {
        if self.plan.n_partitions == 0 {
            return None;
        }
        for s in self.split_schedules() {
            if now_ns >= s.fence_ns && now_ns < s.heal_ns {
                let fenced_pe = if s.minority & (1u64 << me) != 0 {
                    me
                } else if s.minority & (1u64 << peer) != 0 {
                    peer
                } else {
                    continue;
                };
                return Some(PartitionOutcome::FailAt {
                    at_ns: now_ns,
                    pe: fenced_pe,
                    epoch: s.fence_epoch,
                });
            }
        }
        // not fenced (yet): is the pair physically severed by a split
        // window right now? The op cannot complete before detection —
        // it blocks until the fence lands (or, for a blip, until the
        // window ends) exactly like an op at an undetected-dead peer.
        let p = self.plan.split_at(now_ns)?;
        if (p.mask >> me) & 1 == (p.mask >> peer) & 1 {
            return None; // same side: unaffected pre-fence
        }
        if p.end_ns - p.start_ns < DETECT_BOUND_NS {
            return Some(PartitionOutcome::BlockUntil(p.end_ns));
        }
        let fence = p.start_ns + DETECT_BOUND_NS;
        let full = if self.n_pes == 64 { u64::MAX } else { (1u64 << self.n_pes) - 1 };
        let minority = Self::minority_of(p.mask & full, full);
        if minority == 0 {
            return None;
        }
        let fenced_pe = if minority & (1u64 << me) != 0 { me } else { peer };
        Some(PartitionOutcome::FailAt { at_ns: fence, pe: fenced_pe, epoch: self.epoch_at(fence) })
    }

    /// The fence epoch a minority-side caller is stamped with at
    /// `now_ns`, if a fence covering `pe` is up.
    pub fn fenced_minority_epoch(&self, pe: u32, now_ns: u64) -> Option<u64> {
        self.split_schedules()
            .iter()
            .find(|s| now_ns >= s.fence_ns && now_ns < s.heal_ns && s.minority & (1u64 << pe) != 0)
            .map(|s| s.fence_epoch)
    }

    /// Is `pe` physically fail-stopped at `now_ns` (its hardware is
    /// dead, whether or not survivors have detected it yet)?
    pub fn crashed(&self, pe: u32, now_ns: u64) -> bool {
        self.plan.crashed(pe, now_ns)
    }

    /// The deterministic instant every survivor detects `pe`'s death
    /// (lease expiry), if `pe` has a detectable crash scheduled.
    pub fn detect_ns(&self, pe: u32) -> Option<u64> {
        self.events()
            .iter()
            .find(|e| e.pe == pe && e.kind == EventKind::Evict)
            .map(|e| e.ts_ns)
    }

    /// The rejoin instant of `pe`'s detectable crash, if it rejoins.
    pub fn rejoin_ns(&self, pe: u32) -> Option<u64> {
        self.events()
            .iter()
            .find(|e| e.pe == pe && e.kind == EventKind::Rejoin)
            .map(|e| e.ts_ns)
    }

    /// The view epoch in force right after `pe`'s eviction was applied
    /// — the epoch a [`crate::TransferError::PeerDead`] carries.
    pub fn eviction_epoch(&self, pe: u32) -> Option<u64> {
        self.events()
            .iter()
            .position(|e| e.pe == pe && e.kind == EventKind::Evict)
            .map(|i| i as u64 + 1)
    }

    /// The epoch at `now_ns`: the number of transitions applied.
    pub fn epoch_at(&self, now_ns: u64) -> u64 {
        self.events().iter().take_while(|e| e.ts_ns <= now_ns).count() as u64
    }

    /// The full (quorum-side) view at `now_ns`. While a fence is up
    /// this is the majority's view — the authoritative one; minority
    /// PEs don't consult views while fenced, they fail ops.
    pub fn view_at(&self, now_ns: u64) -> View {
        let full = if self.n_pes == 64 { u64::MAX } else { (1u64 << self.n_pes) - 1 };
        let mut v = View { epoch: 0, alive: full, members: full };
        // crash bookkeeping so a heal never resurrects an evicted PE:
        // `dead` tracks currently-crashed PEs, `evicted` every PE that
        // ever left collectives through a crash (membership via crash
        // is monotonic — rejoin and heal only restore `alive`).
        let (mut dead, mut evicted) = (0u64, 0u64);
        for e in self.events().iter().take_while(|e| e.ts_ns <= now_ns) {
            match e.kind {
                EventKind::Evict => {
                    dead |= 1u64 << e.pe;
                    evicted |= 1u64 << e.pe;
                    v.alive &= !(1u64 << e.pe);
                    v.members &= !(1u64 << e.pe);
                }
                EventKind::Rejoin => {
                    dead &= !(1u64 << e.pe);
                    v.alive |= 1u64 << e.pe;
                }
                EventKind::Fence => {
                    v.alive &= !e.mask;
                    v.members &= !e.mask;
                }
                EventKind::Heal => {
                    // a heal fully re-admits the minority — its PEs
                    // wrote nothing while fenced, so unlike a crash
                    // rejoin they return to collectives too
                    v.alive |= e.mask & !dead;
                    v.members |= e.mask & !evicted;
                }
            }
            v.epoch += 1;
        }
        v
    }

    fn events(&self) -> &[Event] {
        &self.events[..self.n_events]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::default()
            .with_crash(1, 100_000, 800_000)
            .with_crash(3, 200_000, 0)
    }

    #[test]
    fn views_are_pure_and_epoch_numbered() {
        let ms = Membership::new(&plan(), 8);
        assert!(ms.armed());
        // before anything: full view, epoch 0
        let v0 = ms.view_at(0);
        assert_eq!(v0, View { epoch: 0, alive: 0xff, members: 0xff });
        // pe1 crashed but undetected: still in the view
        let v1 = ms.view_at(100_000 + DETECT_BOUND_NS - 1);
        assert_eq!(v1.epoch, 0);
        assert!(v1.is_alive(1));
        assert!(ms.crashed(1, 100_000), "physically dead before detection");
        // detection evicts pe1 at exactly crash + bound
        assert_eq!(ms.detect_ns(1), Some(100_000 + DETECT_BOUND_NS));
        let v2 = ms.view_at(100_000 + DETECT_BOUND_NS);
        assert_eq!(v2.epoch, 1);
        assert!(!v2.is_alive(1) && !v2.is_member(1));
        assert_eq!(ms.eviction_epoch(1), Some(1));
        // pe3 evicted next, never rejoins
        let v3 = ms.view_at(200_000 + DETECT_BOUND_NS);
        assert_eq!(v3.epoch, 2);
        assert_eq!(v3.member_list(8), vec![0, 2, 4, 5, 6, 7]);
        assert_eq!(ms.rejoin_ns(3), None);
        // pe1 rejoins: alive again, but never re-admitted to collectives
        let v4 = ms.view_at(800_000);
        assert_eq!(v4.epoch, 3);
        assert!(v4.is_alive(1));
        assert!(!v4.is_member(1), "rejoined PEs stay out of collectives");
        assert!(!ms.crashed(1, 800_000));
        assert_eq!(ms.epoch_at(u64::MAX), 3);
    }

    #[test]
    fn transparent_blip_never_reaches_the_view() {
        // rejoin lands before the lease expires: no eviction, no epoch
        let p = FaultPlan::default().with_crash(0, 50_000, 50_000 + DETECT_BOUND_NS);
        let ms = Membership::new(&p, 4);
        assert_eq!(ms.epoch_at(u64::MAX), 0);
        assert_eq!(ms.detect_ns(0), None);
        assert!(ms.crashed(0, 60_000), "still physically dead inside the blip");
        assert_eq!(ms.view_at(u64::MAX), View { epoch: 0, alive: 0xf, members: 0xf });
    }

    #[test]
    fn unfaulted_membership_is_inert() {
        let ms = Membership::new(&FaultPlan::default(), 16);
        assert!(!ms.armed());
        assert_eq!(ms.epoch_at(u64::MAX), 0);
        assert_eq!(ms.view_at(12345).member_list(16).len(), 16);
    }

    #[test]
    fn split_fences_the_minority_and_heals_at_a_higher_epoch() {
        // PEs 1,2 severed from the other six over [100k, 400k)
        let p = FaultPlan::default().with_partition_split(0b110, 100_000, 400_000);
        let ms = Membership::new(&p, 8);
        assert!(ms.armed(), "a partition alone arms membership");
        let s = ms.split_schedules();
        assert_eq!(s.len(), 1);
        assert_eq!(
            s[0],
            SplitSchedule {
                minority: 0b110,
                fence_ns: 100_000 + DETECT_BOUND_NS,
                heal_ns: 400_000 + HEAL_BOUND_NS,
                fence_epoch: 1,
                heal_epoch: 2,
            }
        );
        // undetected: full view
        assert_eq!(ms.view_at(s[0].fence_ns - 1), View { epoch: 0, alive: 0xff, members: 0xff });
        // fenced: minority out of alive AND members, epoch bumped
        let fenced = ms.view_at(s[0].fence_ns);
        assert_eq!(fenced, View { epoch: 1, alive: 0b1111_1001, members: 0b1111_1001 });
        assert_eq!(fenced.member_list(8), vec![0, 3, 4, 5, 6, 7]);
        // healed: minority fully re-admitted (unlike crash rejoin) at a
        // higher epoch
        assert_eq!(ms.view_at(s[0].heal_ns - 1).epoch, 1);
        assert_eq!(ms.view_at(s[0].heal_ns), View { epoch: 2, alive: 0xff, members: 0xff });
    }

    #[test]
    fn partition_outcome_covers_every_op_phase() {
        let p = FaultPlan::default().with_partition_split(0b110, 100_000, 400_000);
        let ms = Membership::new(&p, 8);
        let fence = 100_000 + DETECT_BOUND_NS;
        // before the window: unaffected
        assert_eq!(ms.partition_outcome(0, 1, 50_000), None);
        // severed but undetected: fail scheduled for the fence instant,
        // reporting the minority end of the pair
        assert_eq!(
            ms.partition_outcome(0, 1, 150_000),
            Some(PartitionOutcome::FailAt { at_ns: fence, pe: 1, epoch: 1 })
        );
        assert_eq!(
            ms.partition_outcome(1, 0, 150_000),
            Some(PartitionOutcome::FailAt { at_ns: fence, pe: 1, epoch: 1 })
        );
        // same side pre-fence: unaffected
        assert_eq!(ms.partition_outcome(1, 2, 150_000), None);
        assert_eq!(ms.partition_outcome(0, 3, 150_000), None);
        // fence up: majority→minority fails naming the peer...
        assert_eq!(
            ms.partition_outcome(0, 2, fence),
            Some(PartitionOutcome::FailAt { at_ns: fence, pe: 2, epoch: 1 })
        );
        // ...and the minority fails everything it issues, naming itself
        // (even minority-internal ops: the side lacks quorum)
        assert_eq!(
            ms.partition_outcome(1, 2, fence + 1),
            Some(PartitionOutcome::FailAt { at_ns: fence + 1, pe: 1, epoch: 1 })
        );
        assert_eq!(ms.fenced_minority_epoch(1, fence), Some(1));
        assert_eq!(ms.fenced_minority_epoch(0, fence), None);
        // links restored but views not yet merged: still fenced
        assert!(ms.partition_outcome(0, 1, 400_000 + HEAL_BOUND_NS - 1).is_some());
        // healed: unaffected again
        assert_eq!(ms.partition_outcome(0, 1, 400_000 + HEAL_BOUND_NS), None);
        // majority-internal ops are never affected
        assert_eq!(ms.partition_outcome(0, 3, fence), None);
    }

    #[test]
    fn quorum_tie_goes_to_the_side_containing_pe_zero() {
        // 4 PEs split 2|2 both ways round: PE 0's side always wins
        let a = Membership::new(&FaultPlan::default().with_partition_split(0b1100, 0, 300_000), 4);
        assert_eq!(a.split_schedules()[0].minority, 0b1100);
        let b = Membership::new(&FaultPlan::default().with_partition_split(0b0011, 0, 300_000), 4);
        assert_eq!(b.split_schedules()[0].minority, 0b1100);
        // and a majority-sized mask fences its complement
        let c = Membership::new(&FaultPlan::default().with_partition_split(0b0111, 0, 300_000), 4);
        assert_eq!(c.split_schedules()[0].minority, 0b1000);
    }

    #[test]
    fn short_split_is_a_transparent_blip() {
        let p = FaultPlan::default().with_partition_split(0b10, 100_000, 100_000 + DETECT_BOUND_NS - 1);
        let ms = Membership::new(&p, 4);
        assert!(ms.split_schedules().is_empty());
        assert_eq!(ms.epoch_at(u64::MAX), 0);
        // a severed op inside the blip just blocks until the window ends
        assert_eq!(
            ms.partition_outcome(0, 1, 120_000),
            Some(PartitionOutcome::BlockUntil(100_000 + DETECT_BOUND_NS - 1))
        );
        assert_eq!(ms.partition_outcome(0, 1, 100_000 + DETECT_BOUND_NS), None);
    }

    #[test]
    fn cuts_never_reach_the_view_layer() {
        let p = FaultPlan::default().with_partition_cut(0, 1, 100_000, 900_000);
        let ms = Membership::new(&p, 4);
        assert!(ms.armed(), "cuts still arm membership queries");
        assert!(ms.split_schedules().is_empty());
        assert_eq!(ms.epoch_at(u64::MAX), 0);
        assert_eq!(ms.partition_outcome(0, 1, 200_000), None);
        assert_eq!(ms.view_at(200_000).member_list(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn heal_never_resurrects_a_crashed_pe() {
        // PE 1 is both inside the split minority and crashed for good:
        // the heal re-admits the rest of the minority but not PE 1
        let p = FaultPlan::default()
            .with_crash(1, 0, 0)
            .with_partition_split(0b110, 100_000, 400_000);
        let ms = Membership::new(&p, 8);
        let healed = ms.view_at(400_000 + HEAL_BOUND_NS);
        assert!(!healed.is_alive(1) && !healed.is_member(1));
        assert!(healed.is_alive(2) && healed.is_member(2));
    }
}
