//! Virtual-time membership: fail-stop detection, epoch-numbered views,
//! and PE rejoin — derived entirely from the fault plan's crash
//! schedule.
//!
//! The detection protocol piggybacks heartbeats on the sync-flag
//! traffic every PE already produces: each flag write refreshes the
//! writer's lease, and a crashed PE stops writing at its `at_ns`, so
//! survivors observe the lease expire after [`MISSED_BEATS`] heartbeat
//! periods — the detection bound is
//!
//! ```text
//! DETECT_BOUND_NS = HEARTBEAT_PERIOD_NS × MISSED_BEATS
//! ```
//!
//! Because lease expiry is a deterministic virtual-time instant, the
//! membership view is a *pure function* of `(fault plan, now)`: every
//! survivor computes the same epoch-numbered view with no extra
//! messages, which is exactly what the chaos suite's view-convergence
//! oracle checks end to end. An op against a dead peer blocks until the
//! detection instant (the caller cannot know the peer is dead before
//! its lease expires) and then fails as
//! [`crate::TransferError::PeerDead`] carrying the eviction epoch.
//!
//! Two liveness notions are deliberately distinct:
//!
//! - **alive** — point-to-point reachability. A rejoined PE becomes
//!   alive again at its rejoin instant (after symmetric-heap
//!   re-registration and a breaker warm-up probe).
//! - **collective member** — participation in barrier/bcast/reduce/
//!   fcollect/alltoall. The member set only shrinks within a run: a
//!   rejoined PE is *not* re-admitted to collectives, because its
//!   generation counters are behind the survivors' and re-admitting it
//!   mid-generation would deadlock the `>=`-predicate flag waits.
//!
//! A crash whose rejoin lands before the lease would have expired is a
//! transparent blip: no survivor ever detects it, so no eviction or
//! epoch bump occurs (ops issued against the peer inside the blip
//! simply block until the rejoin instant).

use faults::{FaultPlan, MAX_CRASHES};

/// Virtual-time heartbeat period of the piggybacked lease protocol.
pub const HEARTBEAT_PERIOD_NS: u64 = 50_000;
/// Consecutive missed heartbeats that expire a lease.
pub const MISSED_BEATS: u64 = 3;
/// Bounded detection latency: a crash at `t` is detected by every
/// survivor at exactly `t + DETECT_BOUND_NS`.
pub const DETECT_BOUND_NS: u64 = HEARTBEAT_PERIOD_NS * MISSED_BEATS;

/// Virtual-time cost of re-registering a rejoining PE's symmetric heaps
/// with the fabric (descriptor re-exchange + MR re-registration),
/// charged to the first op that touches the rejoined peer.
pub const REJOIN_REREG_NS: u64 = 25_000;

/// Duration of the warm-up probe a rejoined peer's breaker demands
/// before regular traffic resumes (one modeled probe round-trip).
pub const REJOIN_PROBE_NS: u64 = 5_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EventKind {
    Evict,
    Rejoin,
}

/// One membership transition, at a deterministic virtual instant.
#[derive(Clone, Copy, Debug)]
struct Event {
    ts_ns: u64,
    pe: u32,
    kind: EventKind,
}

/// The epoch-numbered membership view at one virtual instant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct View {
    /// Number of membership transitions applied so far. Starts at 0;
    /// every eviction and every rejoin bumps it.
    pub epoch: u64,
    /// Bitmask of PEs reachable for point-to-point ops.
    pub alive: u64,
    /// Bitmask of collective members (monotonically shrinking).
    pub members: u64,
}

impl View {
    pub fn is_alive(&self, pe: u32) -> bool {
        self.alive & (1u64 << pe) != 0
    }

    pub fn is_member(&self, pe: u32) -> bool {
        self.members & (1u64 << pe) != 0
    }

    /// Collective member list, ascending PE order.
    pub fn member_list(&self, n_pes: usize) -> Vec<usize> {
        (0..n_pes).filter(|&p| self.is_member(p as u32)).collect()
    }
}

/// The membership schedule of one job: the crash plan compiled into a
/// sorted list of evict/rejoin events. `Copy`, no heap — it lives
/// inside [`crate::ShmemMachine`] for the whole run.
#[derive(Clone, Copy, Debug)]
pub struct Membership {
    n_pes: u32,
    plan: FaultPlan,
    events: [Event; 2 * MAX_CRASHES],
    n_events: usize,
}

impl Membership {
    pub fn new(plan: &FaultPlan, n_pes: usize) -> Membership {
        let mut ev = [Event { ts_ns: 0, pe: 0, kind: EventKind::Evict }; 2 * MAX_CRASHES];
        let mut n = 0;
        if plan.n_crashes > 0 {
            assert!(n_pes <= 64, "membership views are 64-bit PE masks");
        }
        for c in plan.crashes() {
            let detect = c.at_ns + DETECT_BOUND_NS;
            if c.rejoin_ns != 0 && c.rejoin_ns <= detect {
                // transparent blip: back before any lease expired
                continue;
            }
            ev[n] = Event { ts_ns: detect, pe: c.pe, kind: EventKind::Evict };
            n += 1;
            if c.rejoin_ns != 0 {
                ev[n] = Event { ts_ns: c.rejoin_ns, pe: c.pe, kind: EventKind::Rejoin };
                n += 1;
            }
        }
        ev[..n].sort_by_key(|e| (e.ts_ns, e.pe));
        Membership { n_pes: n_pes as u32, plan: *plan, events: ev, n_events: n }
    }

    /// Cheap hot-path gate: false means no crash is scheduled and every
    /// membership query short-circuits (unfaulted runs must not draw).
    pub fn armed(&self) -> bool {
        self.plan.n_crashes > 0
    }

    /// Is `pe` physically fail-stopped at `now_ns` (its hardware is
    /// dead, whether or not survivors have detected it yet)?
    pub fn crashed(&self, pe: u32, now_ns: u64) -> bool {
        self.plan.crashed(pe, now_ns)
    }

    /// The deterministic instant every survivor detects `pe`'s death
    /// (lease expiry), if `pe` has a detectable crash scheduled.
    pub fn detect_ns(&self, pe: u32) -> Option<u64> {
        self.events()
            .iter()
            .find(|e| e.pe == pe && e.kind == EventKind::Evict)
            .map(|e| e.ts_ns)
    }

    /// The rejoin instant of `pe`'s detectable crash, if it rejoins.
    pub fn rejoin_ns(&self, pe: u32) -> Option<u64> {
        self.events()
            .iter()
            .find(|e| e.pe == pe && e.kind == EventKind::Rejoin)
            .map(|e| e.ts_ns)
    }

    /// The view epoch in force right after `pe`'s eviction was applied
    /// — the epoch a [`crate::TransferError::PeerDead`] carries.
    pub fn eviction_epoch(&self, pe: u32) -> Option<u64> {
        self.events()
            .iter()
            .position(|e| e.pe == pe && e.kind == EventKind::Evict)
            .map(|i| i as u64 + 1)
    }

    /// The epoch at `now_ns`: the number of transitions applied.
    pub fn epoch_at(&self, now_ns: u64) -> u64 {
        self.events().iter().take_while(|e| e.ts_ns <= now_ns).count() as u64
    }

    /// The full view at `now_ns`.
    pub fn view_at(&self, now_ns: u64) -> View {
        let full = if self.n_pes == 64 { u64::MAX } else { (1u64 << self.n_pes) - 1 };
        let mut v = View { epoch: 0, alive: full, members: full };
        for e in self.events().iter().take_while(|e| e.ts_ns <= now_ns) {
            match e.kind {
                EventKind::Evict => {
                    v.alive &= !(1u64 << e.pe);
                    v.members &= !(1u64 << e.pe);
                }
                EventKind::Rejoin => v.alive |= 1u64 << e.pe,
            }
            v.epoch += 1;
        }
        v
    }

    fn events(&self) -> &[Event] {
        &self.events[..self.n_events]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::default()
            .with_crash(1, 100_000, 800_000)
            .with_crash(3, 200_000, 0)
    }

    #[test]
    fn views_are_pure_and_epoch_numbered() {
        let ms = Membership::new(&plan(), 8);
        assert!(ms.armed());
        // before anything: full view, epoch 0
        let v0 = ms.view_at(0);
        assert_eq!(v0, View { epoch: 0, alive: 0xff, members: 0xff });
        // pe1 crashed but undetected: still in the view
        let v1 = ms.view_at(100_000 + DETECT_BOUND_NS - 1);
        assert_eq!(v1.epoch, 0);
        assert!(v1.is_alive(1));
        assert!(ms.crashed(1, 100_000), "physically dead before detection");
        // detection evicts pe1 at exactly crash + bound
        assert_eq!(ms.detect_ns(1), Some(100_000 + DETECT_BOUND_NS));
        let v2 = ms.view_at(100_000 + DETECT_BOUND_NS);
        assert_eq!(v2.epoch, 1);
        assert!(!v2.is_alive(1) && !v2.is_member(1));
        assert_eq!(ms.eviction_epoch(1), Some(1));
        // pe3 evicted next, never rejoins
        let v3 = ms.view_at(200_000 + DETECT_BOUND_NS);
        assert_eq!(v3.epoch, 2);
        assert_eq!(v3.member_list(8), vec![0, 2, 4, 5, 6, 7]);
        assert_eq!(ms.rejoin_ns(3), None);
        // pe1 rejoins: alive again, but never re-admitted to collectives
        let v4 = ms.view_at(800_000);
        assert_eq!(v4.epoch, 3);
        assert!(v4.is_alive(1));
        assert!(!v4.is_member(1), "rejoined PEs stay out of collectives");
        assert!(!ms.crashed(1, 800_000));
        assert_eq!(ms.epoch_at(u64::MAX), 3);
    }

    #[test]
    fn transparent_blip_never_reaches_the_view() {
        // rejoin lands before the lease expires: no eviction, no epoch
        let p = FaultPlan::default().with_crash(0, 50_000, 50_000 + DETECT_BOUND_NS);
        let ms = Membership::new(&p, 4);
        assert_eq!(ms.epoch_at(u64::MAX), 0);
        assert_eq!(ms.detect_ns(0), None);
        assert!(ms.crashed(0, 60_000), "still physically dead inside the blip");
        assert_eq!(ms.view_at(u64::MAX), View { epoch: 0, alive: 0xf, members: 0xf });
    }

    #[test]
    fn unfaulted_membership_is_inert() {
        let ms = Membership::new(&FaultPlan::default(), 16);
        assert!(!ms.armed());
        assert_eq!(ms.epoch_at(u64::MAX), 0);
        assert_eq!(ms.view_at(12345).member_list(16).len(), 16);
    }
}
