//! Low-level synchronization plumbing over the per-PE sync area.
//!
//! The sync area (part of each PE's registered host span) holds the flag
//! cells used by the dissemination barrier, broadcast/reduce, and
//! `put_u64` scratch. Flag writes are real transfers: CPU stores through
//! the shared segment node-locally, 8-byte RDMA writes across nodes —
//! and under an armed fault plan they draw from a *dedicated* sync-flag
//! CQE stream ([`faults::SYNC_STREAM`]), so a lost flag write surfaces
//! as a typed [`TransferError`] on the `try_*` entry points instead of
//! a panic, and a flag that never arrives trips `sync_wait`'s
//! virtual-time timeout instead of spinning forever.

use crate::error::TransferError;
use crate::machine::ShmemMachine;
use crate::membership::PartitionOutcome;
use crate::state::Protocol;
use pcie_sim::mem::MemRef;
use pcie_sim::ProcId;
use sim_core::{SimDuration, TaskCtx};
use std::sync::Arc;

/// Default `sync_wait` deadline under an active fault plan that sets no
/// per-op timeout: generous against late partners (whole-op retry
/// chains, proxy stalls), small against the simulation horizon. The
/// collectives replay their flags and re-wait on timeout, so this is a
/// detection latency, not a failure budget.
pub(crate) const SYNC_WAIT_TIMEOUT_NS: u64 = 2_000_000;

/// Sync-area layout (offsets within each PE's sync area).
pub mod cells {
    /// Dissemination-barrier round flags: 64 cells.
    pub const BARRIER: u64 = 0;
    /// Scratch cell backing `Pe::put_u64`.
    pub const SCRATCH: u64 = 512;
    /// Broadcast round flags: 64 cells.
    pub const BCAST: u64 = 1024;
    /// Per-source reduce arrival flags: `8 * npes` bytes.
    pub const REDUCE_FLAGS: u64 = 2048;
    /// Reduce data slots: `SLOT * npes` bytes.
    pub const REDUCE_DATA: u64 = 4096;
    /// Bytes per reduce data slot (max reduce payload per PE).
    pub const SLOT: u64 = 256;
    /// Per-source fcollect/alltoall arrival flags: `8 * npes` bytes.
    pub const COLL_FLAGS: u64 = 24 << 10;
    /// Mirror scratch area for flag writes (one cell per flag cell).
    pub const FLAG_SCRATCH: u64 = 32 << 10;
}

impl ShmemMachine {
    /// The scratch cell backing `put_u64` for `pe`.
    pub(crate) fn sync_scratch(&self, pe: ProcId) -> MemRef {
        self.layout().sync_base(pe).add(cells::SCRATCH)
    }

    /// Address of a sync cell on `pe`.
    pub(crate) fn sync_cell(&self, pe: ProcId, off: u64) -> MemRef {
        debug_assert!(off + 8 <= crate::layout::SYNC_AREA);
        self.layout().sync_base(pe).add(off)
    }

    /// Bounded-retry loop for sync-area RDMA posts, drawing from the
    /// dedicated sync-flag CQE stream so sync traffic faults like any
    /// other transfer without perturbing the RMA streams. Failures and
    /// successes feed the [`Protocol::HostRdma`] health breaker (the
    /// transport these 8-byte writes ride on). With an unarmed CQE
    /// stream this is exactly one `post()` call and mints no op token,
    /// so unfaulted runs keep byte-identical traces.
    fn sync_post_with_retry<T>(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        label: &'static str,
        mut post: impl FnMut() -> Result<T, ib_sim::MrError>,
    ) -> Result<T, TransferError> {
        let plan = self.cfg().faults;
        if !plan.cqe_armed() {
            return post().map_err(TransferError::Mr);
        }
        let token = self.next_op(me);
        let mut attempt: u32 = 0;
        loop {
            if let Some(f) = self.ib().inject_sync_cqe(me, ctx.now()) {
                self.obs_fault(me, ctx.now(), f.kind, label, token);
                self.health_on_failure(me, ctx.now(), Protocol::HostRdma, token);
                ctx.advance(f.detect);
                if attempt >= plan.max_retries {
                    self.obs().fault_tally_at("exhausted", label, ctx.now());
                    return Err(TransferError::RetriesExhausted {
                        kind: f.kind,
                        attempts: attempt + 1,
                    });
                }
                let backoff = plan.backoff_ns(token.id, attempt);
                self.obs_retry(me, ctx.now(), label, attempt + 1, backoff, token);
                ctx.advance(SimDuration::from_ns(backoff));
                attempt += 1;
                continue;
            }
            let out = post().map_err(TransferError::Mr)?;
            self.health_on_success(me, ctx.now(), Protocol::HostRdma, token);
            if attempt > 0 {
                self.obs().fault_tally_at("recovered", label, ctx.now());
            }
            return Ok(out);
        }
    }

    /// Write a u64 flag into `target`'s sync cell. A CPU store through
    /// the shared segment node-locally; an 8-byte RDMA write otherwise.
    /// Fire-and-forget: visibility at the modelled arrival time.
    ///
    /// Idempotent by design: flag cells carry monotonic generation
    /// counters and waiters use `>=` predicates, so a replayed write is
    /// harmless — the collectives lean on this for flag-loss recovery.
    pub(crate) fn try_sync_flag_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        target: ProcId,
        cell_off: u64,
        value: u64,
    ) -> Result<(), TransferError> {
        self.peer_gate(ctx, me, target)?;
        let dst = self.sync_cell(target, cell_off);
        let topo = self.cluster().topo();
        if topo.same_node(me, target) {
            // store forwarded through the coherence fabric
            ctx.advance(SimDuration::from_ns(120));
            self.cluster()
                .mem()
                .get(dst.space)
                .expect("sync segment")
                .write_u64(dst.offset, value)
                .expect("sync flag write");
        } else {
            // stage the value in my mirror scratch cell, RDMA it over
            let scratch = self.sync_cell(me, cells::FLAG_SCRATCH + cell_off);
            self.cluster()
                .mem()
                .get(scratch.space)
                .expect("sync segment")
                .write_u64(scratch.offset, value)
                .expect("sync scratch write");
            let rkey = self.layout().host_rkey(target);
            let comp = self.sync_post_with_retry(ctx, me, "sync-flag", || {
                self.ib().post_rdma_write(ctx, me, scratch, rkey, dst, 8)
            })?;
            // local completion is cheap to wait and keeps scratch reuse safe
            ctx.wait(&comp.local);
        }
        Ok(())
    }

    /// Copy `len` bytes from a registered local buffer into `target`'s
    /// sync area (reduce data slots). Replay-safe for the same reason
    /// as flag puts: a fixed destination slot, gated by a flag write.
    pub(crate) fn try_sync_data_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        target: ProcId,
        cell_off: u64,
        src: MemRef,
        len: u64,
    ) -> Result<(), TransferError> {
        self.peer_gate(ctx, me, target)?;
        let dst = self.sync_cell(target, cell_off);
        let topo = self.cluster().topo();
        if topo.same_node(me, target) {
            self.shm_copy(ctx, src, dst, len);
        } else {
            self.ensure_registered(ctx, me, src, len);
            let rkey = self.layout().host_rkey(target);
            let comp = self.sync_post_with_retry(ctx, me, "sync-data", || {
                self.ib().post_rdma_write(ctx, me, src, rkey, dst, len)
            })?;
            ctx.wait(&comp.local);
            self.pe_state(me).track(comp.remote);
        }
        Ok(())
    }

    /// Poll a local sync cell until `pred(value)` holds, with exponential
    /// backoff (poll_interval up to 2us) so long waits stay cheap in
    /// event count while the timing error stays bounded.
    ///
    /// Under an active fault plan the poll is bounded by a virtual-time
    /// deadline (the plan's `op_timeout_ns`, or [`SYNC_WAIT_TIMEOUT_NS`]
    /// when unset) and returns [`TransferError::Timeout`] when the flag
    /// never arrives — a lost flag write becomes a typed error the
    /// collectives recover from by replaying, never a hang. Unfaulted
    /// runs keep the historic unbounded loop.
    ///
    /// `from` names the expected writer, making the wait fail-stop
    /// aware: when the writer's crash becomes detectable (lease expiry)
    /// and the flag still has not arrived, the wait fails over with
    /// [`TransferError::PeerDead`] at the eviction instant instead of
    /// burning the full sync timeout — this bounds collective
    /// view convergence by `DETECT_BOUND_NS`, not by the replay
    /// budget. A waiter whose own detectable crash arrives mid-wait
    /// fail-stops the same way; a transparent blip of either side just
    /// keeps polling (the flag can still arrive after the rejoin).
    ///
    /// The wait is partition-aware too: once a quorum fence separates
    /// the waiter from the expected writer (or fences the waiter itself
    /// onto the minority side), the missing flag cannot arrive until
    /// the heal, so the wait fails over with
    /// [`TransferError::Partitioned`] at the fence instant. A split
    /// too short to be detected is a blip here as well — the loop just
    /// keeps polling across it.
    pub(crate) fn try_sync_wait(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        from: ProcId,
        cell_off: u64,
        pred: impl Fn(u64) -> bool,
    ) -> Result<(), TransferError> {
        let cell = self.sync_cell(me, cell_off);
        let arena = self.cluster().mem().get(cell.space).expect("sync segment");
        let mut interval = self.poll_interval();
        let cap = SimDuration::from_us(2);
        let timeout_ns = if self.cfg().faults.active() {
            match self.cfg().faults.op_timeout_ns {
                0 => SYNC_WAIT_TIMEOUT_NS,
                t => t,
            }
        } else {
            0
        };
        let deadline = ctx.now().0 + timeout_ns * sim_core::PS_PER_NS;
        let ms = *self.membership();
        let writer_evicts = if ms.armed() { ms.detect_ns(from.0) } else { None };
        let me_evicts = if ms.armed() { ms.detect_ns(me.0) } else { None };
        loop {
            self.drain_pending(ctx, me);
            if pred(arena.read_u64(cell.offset).expect("sync flag read")) {
                return Ok(());
            }
            let now_ns = ctx.now().0 / sim_core::PS_PER_NS;
            if me_evicts.is_some() && ms.crashed(me.0, now_ns) {
                return Err(TransferError::PeerDead {
                    pe: me.0,
                    epoch: ms.epoch_at(now_ns),
                });
            }
            if let Some(detect) = writer_evicts {
                if now_ns >= detect && ms.crashed(from.0, now_ns) {
                    return Err(TransferError::PeerDead {
                        pe: from.0,
                        epoch: ms
                            .eviction_epoch(from.0)
                            .expect("detectable crash has an eviction epoch"),
                    });
                }
            }
            if ms.armed() {
                if let Some(PartitionOutcome::FailAt { at_ns, pe, epoch }) =
                    ms.partition_outcome(me.0, from.0, now_ns)
                {
                    if now_ns >= at_ns {
                        return Err(TransferError::Partitioned { pe, epoch });
                    }
                }
            }
            if timeout_ns > 0 && ctx.now().0 >= deadline {
                return Err(TransferError::Timeout {
                    after_ns: timeout_ns,
                    diag: String::new(),
                });
            }
            ctx.advance(interval);
            interval = (interval * 2).min(cap);
        }
    }
}
