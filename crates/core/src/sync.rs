//! Low-level synchronization plumbing over the per-PE sync area.
//!
//! The sync area (part of each PE's registered host span) holds the flag
//! cells used by the dissemination barrier, broadcast/reduce, and
//! `put_u64` scratch. Flag writes are real transfers: CPU stores through
//! the shared segment node-locally, 8-byte RDMA writes across nodes.

use crate::machine::ShmemMachine;
use pcie_sim::mem::MemRef;
use pcie_sim::ProcId;
use sim_core::{SimDuration, TaskCtx};
use std::sync::Arc;

/// Sync-area layout (offsets within each PE's sync area).
pub mod cells {
    /// Dissemination-barrier round flags: 64 cells.
    pub const BARRIER: u64 = 0;
    /// Scratch cell backing `Pe::put_u64`.
    pub const SCRATCH: u64 = 512;
    /// Broadcast round flags: 64 cells.
    pub const BCAST: u64 = 1024;
    /// Per-source reduce arrival flags: `8 * npes` bytes.
    pub const REDUCE_FLAGS: u64 = 2048;
    /// Reduce data slots: `SLOT * npes` bytes.
    pub const REDUCE_DATA: u64 = 4096;
    /// Bytes per reduce data slot (max reduce payload per PE).
    pub const SLOT: u64 = 256;
    /// Per-source fcollect/alltoall arrival flags: `8 * npes` bytes.
    pub const COLL_FLAGS: u64 = 24 << 10;
    /// Mirror scratch area for flag writes (one cell per flag cell).
    pub const FLAG_SCRATCH: u64 = 32 << 10;
}

impl ShmemMachine {
    /// The scratch cell backing `put_u64` for `pe`.
    pub(crate) fn sync_scratch(&self, pe: ProcId) -> MemRef {
        self.layout().sync_base(pe).add(cells::SCRATCH)
    }

    /// Address of a sync cell on `pe`.
    pub(crate) fn sync_cell(&self, pe: ProcId, off: u64) -> MemRef {
        debug_assert!(off + 8 <= crate::layout::SYNC_AREA);
        self.layout().sync_base(pe).add(off)
    }

    /// Write a u64 flag into `target`'s sync cell. A CPU store through
    /// the shared segment node-locally; an 8-byte RDMA write otherwise.
    /// Fire-and-forget: visibility at the modelled arrival time.
    pub(crate) fn sync_flag_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        target: ProcId,
        cell_off: u64,
        value: u64,
    ) {
        let dst = self.sync_cell(target, cell_off);
        let topo = self.cluster().topo();
        if topo.same_node(me, target) {
            // store forwarded through the coherence fabric
            ctx.advance(SimDuration::from_ns(120));
            self.cluster()
                .mem()
                .get(dst.space)
                .expect("sync segment")
                .write_u64(dst.offset, value)
                .expect("sync flag write");
        } else {
            // stage the value in my mirror scratch cell, RDMA it over
            let scratch = self.sync_cell(me, cells::FLAG_SCRATCH + cell_off);
            self.cluster()
                .mem()
                .get(scratch.space)
                .expect("sync segment")
                .write_u64(scratch.offset, value)
                .expect("sync scratch write");
            let rkey = self.layout().host_rkey(target);
            let comp = self
                .ib()
                .post_rdma_write(ctx, me, scratch, rkey, dst, 8)
                .expect("sync flag rdma");
            // local completion is cheap to wait and keeps scratch reuse safe
            ctx.wait(&comp.local);
        }
    }

    /// Copy `len` bytes from a registered local buffer into `target`'s
    /// sync area (reduce data slots).
    pub(crate) fn sync_data_put(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        target: ProcId,
        cell_off: u64,
        src: MemRef,
        len: u64,
    ) {
        let dst = self.sync_cell(target, cell_off);
        let topo = self.cluster().topo();
        if topo.same_node(me, target) {
            self.shm_copy(ctx, src, dst, len);
        } else {
            self.ensure_registered(ctx, me, src, len);
            let rkey = self.layout().host_rkey(target);
            let comp = self
                .ib()
                .post_rdma_write(ctx, me, src, rkey, dst, len)
                .expect("sync data rdma");
            ctx.wait(&comp.local);
            self.pe_state(me).track(comp.remote);
        }
    }

    /// Poll a local sync cell until `pred(value)` holds, with exponential
    /// backoff (poll_interval up to 2us) so long waits stay cheap in
    /// event count while the timing error stays bounded.
    pub(crate) fn sync_wait(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        cell_off: u64,
        pred: impl Fn(u64) -> bool,
    ) {
        let cell = self.sync_cell(me, cell_off);
        let arena = self.cluster().mem().get(cell.space).expect("sync segment");
        let mut interval = self.poll_interval();
        let cap = SimDuration::from_us(2);
        loop {
            self.drain_pending(ctx, me);
            if pred(arena.read_u64(cell.offset).expect("sync flag read")) {
                return;
            }
            ctx.advance(interval);
            interval = (interval * 2).min(cap);
        }
    }
}
