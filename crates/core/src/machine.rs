//! The [`ShmemMachine`]: one fully-initialized simulated job.
//!
//! Construction performs everything the paper's enhanced initialization
//! does (§III-A): create host + GPU symmetric heaps, register them with
//! the fabric, exchange memory descriptors and IPC handles, and stand up
//! the per-node proxy state. `run` then launches one task per PE.

use crate::config::RuntimeConfig;
use crate::layout::HeapLayout;
use crate::pe::Pe;
use crate::state::PeState;
use gpu_sim::GpuRuntime;
use ib_sim::IbVerbs;
use pcie_sim::{Cluster, ClusterSpec, HwProfile, ProcId};
use sim_core::{Sim, SimDuration};
use std::sync::Arc;

/// Per-node proxy counters (the proxy itself is event-driven).
#[derive(Debug, Default)]
pub struct ProxyStats {
    pub gets_served: std::sync::atomic::AtomicU64,
    pub puts_served: std::sync::atomic::AtomicU64,
    pub bytes: std::sync::atomic::AtomicU64,
}

/// One simulated OpenSHMEM job on a simulated cluster.
pub struct ShmemMachine {
    sim: Sim,
    cluster: Arc<Cluster>,
    gpus: Arc<GpuRuntime>,
    ib: Arc<IbVerbs>,
    cfg: RuntimeConfig,
    layout: HeapLayout,
    pes: Vec<PeState>,
    proxies: Vec<ProxyStats>,
}

impl ShmemMachine {
    /// Build with the default (Wilkes-calibrated) hardware profile.
    pub fn build(spec: ClusterSpec, cfg: RuntimeConfig) -> Arc<ShmemMachine> {
        Self::build_with(spec, HwProfile::wilkes(), cfg)
    }

    /// Build with an explicit hardware profile.
    pub fn build_with(spec: ClusterSpec, hw: HwProfile, cfg: RuntimeConfig) -> Arc<ShmemMachine> {
        let sim = Sim::new();
        let cluster = Cluster::new(spec, hw);
        let topo = cluster.topo().clone();
        for p in topo.all_procs() {
            cluster.create_host_arena(p, cfg.private_host as usize);
        }
        let gpus = GpuRuntime::new(&sim, cluster.clone(), cfg.dev_mem);
        let ib = IbVerbs::new(&sim, gpus.clone());
        let layout = HeapLayout::build(&cluster, &gpus, &ib, &cfg);

        // IPC exchange: every PE maps every node-local GPU at init.
        for p in topo.all_procs() {
            let node = topo.node_of(p);
            for q in topo.procs_on(node) {
                gpus.ipc_mark_open(p, topo.gpu_of(q));
            }
        }

        let pes = topo
            .all_procs()
            .map(|p| {
                PeState::new(
                    p,
                    cfg.host_heap,
                    cfg.gpu_heap,
                    cfg.staging,
                    cfg.private_host,
                    hw.host.memcpy_bw,
                )
            })
            .collect();
        let proxies = (0..topo.nnodes()).map(|_| ProxyStats::default()).collect();
        Arc::new(ShmemMachine {
            sim,
            cluster,
            gpus,
            ib,
            cfg,
            layout,
            pes,
            proxies,
        })
    }

    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn gpus(&self) -> &Arc<GpuRuntime> {
        &self.gpus
    }

    pub fn ib(&self) -> &Arc<IbVerbs> {
        &self.ib
    }

    pub fn cfg(&self) -> &RuntimeConfig {
        &self.cfg
    }

    pub fn layout(&self) -> &HeapLayout {
        &self.layout
    }

    pub fn pe_state(&self, p: ProcId) -> &PeState {
        &self.pes[p.index()]
    }

    pub fn proxy(&self, node: pcie_sim::NodeId) -> &ProxyStats {
        &self.proxies[node.index()]
    }

    pub fn n_pes(&self) -> usize {
        self.cluster.topo().nprocs()
    }

    /// Polling interval as a duration.
    pub fn poll_interval(&self) -> SimDuration {
        SimDuration::from_ns(self.cfg.poll_interval_ns)
    }

    /// Launch one task per PE; each receives a [`Pe`] handle. Virtual
    /// time persists across consecutive `run` calls on one machine.
    pub fn run<T, F>(self: &Arc<Self>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Pe) -> T + Send + Sync,
    {
        let me = self.clone();
        self.sim.run(self.n_pes(), move |ctx| {
            let id = ProcId(ctx.rank() as u32);
            let mut pe = Pe::new(me.clone(), ctx, id);
            f(&mut pe)
        })
    }
}

impl std::fmt::Debug for ShmemMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShmemMachine({} PEs, design {})",
            self.n_pes(),
            self.cfg.design.name()
        )
    }
}
