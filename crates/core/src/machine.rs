//! The [`ShmemMachine`]: one fully-initialized simulated job.
//!
//! Construction performs everything the paper's enhanced initialization
//! does (§III-A): create host + GPU symmetric heaps, register them with
//! the fabric, exchange memory descriptors and IPC handles, and stand up
//! the per-node proxy state. `run` then launches one task per PE.

use crate::config::RuntimeConfig;
use crate::layout::HeapLayout;
use crate::pe::Pe;
use crate::state::PeState;
use gpu_sim::GpuRuntime;
use ib_sim::IbVerbs;
use obs::{Recorder, TrackId, TrackKind};
use pcie_sim::{Cluster, ClusterSpec, HwProfile, ProcId};
use sim_core::{Sim, SimDuration};
use std::sync::Arc;

/// Per-node proxy counters (the proxy itself is event-driven).
#[derive(Debug, Default)]
pub struct ProxyStats {
    pub gets_served: std::sync::atomic::AtomicU64,
    pub puts_served: std::sync::atomic::AtomicU64,
    pub bytes: std::sync::atomic::AtomicU64,
}

/// One simulated OpenSHMEM job on a simulated cluster.
pub struct ShmemMachine {
    sim: Sim,
    cluster: Arc<Cluster>,
    gpus: Arc<GpuRuntime>,
    ib: Arc<IbVerbs>,
    cfg: RuntimeConfig,
    layout: HeapLayout,
    pes: Vec<PeState>,
    proxies: Vec<ProxyStats>,
    obs: Arc<Recorder>,
    /// PE tracks, pre-registered in PE order so op recording is a
    /// lock-free index lookup (and export order never depends on which
    /// PE recorded first).
    pe_tracks: Vec<TrackId>,
}

impl ShmemMachine {
    /// Build with the default (Wilkes-calibrated) hardware profile.
    pub fn build(spec: ClusterSpec, cfg: RuntimeConfig) -> Arc<ShmemMachine> {
        Self::build_with(spec, HwProfile::wilkes(), cfg)
    }

    /// Build with an explicit hardware profile.
    pub fn build_with(spec: ClusterSpec, hw: HwProfile, cfg: RuntimeConfig) -> Arc<ShmemMachine> {
        let sim = Sim::new();
        let cluster = Cluster::new(spec, hw);
        let topo = cluster.topo().clone();
        for p in topo.all_procs() {
            cluster.create_host_arena(p, cfg.private_host as usize);
        }
        let gpus = GpuRuntime::new(&sim, cluster.clone(), cfg.dev_mem);
        let ib = IbVerbs::new(&sim, gpus.clone());
        let layout = HeapLayout::build(&cluster, &gpus, &ib, &cfg);

        // IPC exchange: every PE maps every node-local GPU at init.
        for p in topo.all_procs() {
            let node = topo.node_of(p);
            for q in topo.procs_on(node) {
                gpus.ipc_mark_open(p, topo.gpu_of(q));
            }
        }

        let pes = topo
            .all_procs()
            .map(|p| {
                PeState::new(
                    p,
                    cfg.host_heap,
                    cfg.gpu_heap,
                    cfg.staging,
                    cfg.private_host,
                    hw.host.memcpy_bw,
                )
            })
            .collect();
        let proxies = (0..topo.nnodes()).map(|_| ProxyStats::default()).collect();

        // Observability: one recorder per machine, shared with the
        // hardware layers through their late-bound sinks. PE and proxy
        // tracks are pre-registered in a deterministic order.
        let obs = Recorder::new(cfg.obs_level);
        gpus.obs().attach(obs.clone());
        ib.obs().attach(obs.clone());
        let pe_tracks = topo
            .all_procs()
            .map(|p| obs.track(TrackKind::Pe, p.0))
            .collect();
        for n in 0..topo.nnodes() {
            obs.track(TrackKind::Proxy, n as u32);
        }
        obs.track(TrackKind::Engine, 0);

        Arc::new(ShmemMachine {
            sim,
            cluster,
            gpus,
            ib,
            cfg,
            layout,
            pes,
            proxies,
            obs,
            pe_tracks,
        })
    }

    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn gpus(&self) -> &Arc<GpuRuntime> {
        &self.gpus
    }

    pub fn ib(&self) -> &Arc<IbVerbs> {
        &self.ib
    }

    pub fn cfg(&self) -> &RuntimeConfig {
        &self.cfg
    }

    pub fn layout(&self) -> &HeapLayout {
        &self.layout
    }

    pub fn pe_state(&self, p: ProcId) -> &PeState {
        &self.pes[p.index()]
    }

    pub fn proxy(&self, node: pcie_sim::NodeId) -> &ProxyStats {
        &self.proxies[node.index()]
    }

    pub fn n_pes(&self) -> usize {
        self.cluster.topo().nprocs()
    }

    /// The machine's observability recorder (level set by
    /// [`RuntimeConfig::obs_level`]).
    pub fn obs(&self) -> &Arc<Recorder> {
        &self.obs
    }

    /// The pre-registered observability track of a PE.
    pub fn pe_track(&self, p: ProcId) -> TrackId {
        self.pe_tracks[p.index()]
    }

    /// The pre-registered observability track of a node's proxy.
    pub fn proxy_track(&self, node: pcie_sim::NodeId) -> TrackId {
        self.obs.track(TrackKind::Proxy, node.0)
    }

    /// Record one finished RMA/sync op: latency histogram (Counters+),
    /// op span and protocol-decision record (Spans). `alts` lazily fills
    /// the candidate/threshold lists — it only runs when spans are on.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn obs_op(
        &self,
        op: &'static str,
        me: ProcId,
        peer: ProcId,
        chosen: crate::state::Protocol,
        len: u64,
        src_dev: bool,
        dst_dev: bool,
        same_node: bool,
        t0: sim_core::SimTime,
        t1: sim_core::SimTime,
        alts: impl FnOnce(&mut obs::Cands, &mut obs::Thresholds),
    ) {
        if !self.obs.counters_on() {
            return;
        }
        self.obs.latency(chosen.name(), len, t1.since(t0));
        if !self.obs.spans_on() {
            return;
        }
        let track = self.pe_track(me);
        let mut d = obs::Decision {
            op,
            size: len,
            src_pe: me.0,
            dst_pe: peer.0,
            src_dev,
            dst_dev,
            same_node,
            chosen: chosen.name(),
            ..Default::default()
        };
        alts(&mut d.candidates, &mut d.thresholds);
        self.obs.decision(track, t0, d);
        self.obs.span(
            track,
            op,
            t0,
            t1,
            obs::Payload::Op {
                op,
                protocol: chosen.name(),
                size: len,
                src_pe: me.0,
                dst_pe: peer.0,
                src_dev,
                dst_dev,
                same_node,
            },
        );
    }

    /// Text observability report: latency histograms, hardware
    /// utilization, and the event-engine counters.
    pub fn obs_report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = self.obs.summary();
        let es = self.sim.stats();
        let _ = writeln!(
            s,
            "engine: {} events executed, heap high-water {}, \
             {} completions signalled, {} time-advance stalls",
            es.events_executed, es.max_heap_len, es.completions_signalled, es.time_advance_stalls
        );
        s
    }

    /// Write the Chrome `trace_event` JSON for this machine's recording.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.obs.chrome_trace())
    }

    /// If `GDR_SHMEM_TRACE` names a file and span recording is on, write
    /// the Chrome trace there and return the path (driver convenience).
    pub fn write_trace_if_requested(&self) -> Option<std::path::PathBuf> {
        if !self.obs.spans_on() {
            return None;
        }
        let path = std::path::PathBuf::from(std::env::var_os("GDR_SHMEM_TRACE")?);
        match self.write_chrome_trace(&path) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("obs: failed to write trace to {}: {e}", path.display());
                None
            }
        }
    }

    /// Polling interval as a duration.
    pub fn poll_interval(&self) -> SimDuration {
        SimDuration::from_ns(self.cfg.poll_interval_ns)
    }

    /// Launch one task per PE; each receives a [`Pe`] handle. Virtual
    /// time persists across consecutive `run` calls on one machine.
    pub fn run<T, F>(self: &Arc<Self>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Pe) -> T + Send + Sync,
    {
        let me = self.clone();
        self.sim.run(self.n_pes(), move |ctx| {
            let id = ProcId(ctx.rank() as u32);
            let mut pe = Pe::new(me.clone(), ctx, id);
            f(&mut pe)
        })
    }
}

impl std::fmt::Debug for ShmemMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShmemMachine({} PEs, design {})",
            self.n_pes(),
            self.cfg.design.name()
        )
    }
}
