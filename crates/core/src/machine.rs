//! The [`ShmemMachine`]: one fully-initialized simulated job.
//!
//! Construction performs everything the paper's enhanced initialization
//! does (§III-A): create host + GPU symmetric heaps, register them with
//! the fabric, exchange memory descriptors and IPC handles, and stand up
//! the per-node proxy state. `run` then launches one task per PE.

use crate::config::RuntimeConfig;
use crate::error::TransferError;
use crate::health::{HealthMonitor, Route};
use crate::layout::HeapLayout;
use crate::membership::{Membership, PartitionOutcome, DETECT_BOUND_NS, REJOIN_PROBE_NS, REJOIN_REREG_NS};
use crate::pe::Pe;
use crate::state::{PeState, Protocol};
use gpu_sim::GpuRuntime;
use ib_sim::IbVerbs;
use obs::{Recorder, TrackId, TrackKind};
use parking_lot::Mutex;
use pcie_sim::{Cluster, ClusterSpec, HwProfile, ProcId};
use sim_core::{Completion, Sim, SimDuration, SimTime, TaskCtx};
use std::sync::Arc;

/// Per-op correlation token, minted at the start of every RMA/sync op by
/// [`ShmemMachine::next_op`]. The id threads through pipeline chunks and
/// completion callbacks so Chrome flow events can stitch an op's origin
/// span to its remote completion; `sampled` gates all op-correlated span
/// recording under `GDR_SHMEM_OBS_SAMPLE`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OpToken {
    /// Globally unique: origin PE in the high 32 bits, per-PE sequence
    /// number in the low 32. Id 0 is reserved for uncorrelated spans.
    pub id: u64,
    /// Whether op-correlated spans/flows of this op are recorded.
    pub sampled: bool,
}

/// Which membership transitions have already been observed (and thus
/// emitted to obs / applied to the breakers) — bitmasks by PE. The
/// schedule itself is pure; this only dedups the side effects so
/// exactly one observer emits each lifecycle event.
#[derive(Default)]
struct MemberSeen {
    dead: u64,
    rejoined: u64,
    /// Splits whose `partition`+`fence` instants were emitted (bit =
    /// index into [`Membership::split_schedules`]).
    fenced: u64,
    /// Splits whose `heal` instant was emitted.
    healed: u64,
    /// Cut partitions whose `partition` instant was emitted (bit =
    /// index into the plan's partition list).
    cut: u64,
}

/// Per-node proxy counters (the proxy itself is event-driven).
#[derive(Debug, Default)]
pub struct ProxyStats {
    pub gets_served: std::sync::atomic::AtomicU64,
    pub puts_served: std::sync::atomic::AtomicU64,
    pub bytes: std::sync::atomic::AtomicU64,
}

/// One simulated OpenSHMEM job on a simulated cluster.
pub struct ShmemMachine {
    sim: Sim,
    cluster: Arc<Cluster>,
    gpus: Arc<GpuRuntime>,
    ib: Arc<IbVerbs>,
    cfg: RuntimeConfig,
    layout: HeapLayout,
    pes: Vec<PeState>,
    proxies: Vec<ProxyStats>,
    /// Per-(node, protocol) circuit breakers feeding health-driven
    /// demotion in protocol selection (inert on unfaulted runs).
    /// Shared with the recorder's SLO violation hook when
    /// [`RuntimeConfig::slo_demote`] bridges watchdog breaches into
    /// breaker failure draws.
    health: Arc<HealthMonitor>,
    /// Fail-stop membership schedule compiled from the fault plan's
    /// crash dimension (inert when no crash is scheduled).
    membership: Membership,
    /// Emission dedup for membership lifecycle events.
    member_seen: Mutex<MemberSeen>,
    obs: Arc<Recorder>,
    /// PE tracks, pre-registered in PE order so op recording is a
    /// lock-free index lookup (and export order never depends on which
    /// PE recorded first).
    pe_tracks: Vec<TrackId>,
}

impl ShmemMachine {
    /// Build with the default (Wilkes-calibrated) hardware profile.
    pub fn build(spec: ClusterSpec, cfg: RuntimeConfig) -> Arc<ShmemMachine> {
        Self::build_with(spec, HwProfile::wilkes(), cfg)
    }

    /// Build with an explicit hardware profile.
    pub fn build_with(spec: ClusterSpec, hw: HwProfile, cfg: RuntimeConfig) -> Arc<ShmemMachine> {
        let sim = Sim::new();
        let cluster = Cluster::new(spec, hw);
        let topo = cluster.topo().clone();
        for p in topo.all_procs() {
            cluster.create_host_arena(p, cfg.private_host as usize);
        }
        let gpus = GpuRuntime::new(&sim, cluster.clone(), cfg.dev_mem);
        let ib = IbVerbs::new(&sim, gpus.clone());
        if cfg.faults.active() {
            // arm the hardware layers: CQE/late-completion draws plus
            // HCA-TX and GPU-PCIe degradation/blackout windows
            ib.set_fault_plan(cfg.faults);
            gpus.install_fault_windows(&cfg.faults);
        }
        let layout = HeapLayout::build(&cluster, &gpus, &ib, &cfg);

        // IPC exchange: every PE maps every node-local GPU at init.
        for p in topo.all_procs() {
            let node = topo.node_of(p);
            for q in topo.procs_on(node) {
                gpus.ipc_mark_open(p, topo.gpu_of(q));
            }
        }

        let pes = topo
            .all_procs()
            .map(|p| {
                PeState::new(
                    p,
                    cfg.host_heap,
                    cfg.gpu_heap,
                    cfg.staging,
                    cfg.private_host,
                    hw.host.memcpy_bw,
                )
            })
            .collect();
        let proxies = (0..topo.nnodes()).map(|_| ProxyStats::default()).collect();
        let health = Arc::new(HealthMonitor::new(&cfg.faults, topo.nnodes()));
        let membership = Membership::new(&cfg.faults, topo.nprocs());

        // Observability: one recorder per machine, shared with the
        // hardware layers through their late-bound sinks. PE and proxy
        // tracks are pre-registered in a deterministic order.
        let obs = Recorder::with_windows(cfg.obs_level, cfg.obs_sample, cfg.obs_window_us);
        gpus.obs().attach(obs.clone());
        ib.obs().attach(obs.clone());
        if let Ok(spec) = std::env::var("GDR_SHMEM_OBS_SLO") {
            // fail loud: a mistyped budget silently ignored would mute
            // the watchdog for the whole run
            let policy = obs::SloPolicy::parse(&spec)
                .unwrap_or_else(|e| panic!("GDR_SHMEM_OBS_SLO: {e}"));
            if !policy.is_empty() && !obs.windowing_on() {
                panic!(
                    "GDR_SHMEM_OBS_SLO needs the windowed metrics plane: set \
                     GDR_SHMEM_OBS_WINDOW_US (or RuntimeConfig::with_obs_window) \
                     and GDR_SHMEM_OBS=counters or higher"
                );
            }
            obs.set_slo(policy);
        }
        if cfg.slo_demote {
            // Bridge SLO violations into the health breaker: each
            // violation with a resolvable protocol is a failure draw on
            // that protocol's breaker on every node (the watchdog has no
            // node attribution). The recorder is held weakly — it owns
            // the hook, so a strong capture would leak the cycle.
            let hm = Arc::clone(&health);
            let rec = Arc::downgrade(&obs);
            let nnodes = topo.nnodes();
            obs.set_violation_hook(Box::new(move |v| {
                let Some(proto) = Protocol::from_name(&v.protocol) else {
                    return;
                };
                let now_ns = v.ts_ps / sim_core::PS_PER_NS;
                let mut demoted = false;
                for node in 0..nnodes {
                    if hm.record_failure(node, proto, now_ns).is_some() {
                        demoted = true;
                    }
                }
                if demoted {
                    if let Some(r) = rec.upgrade() {
                        r.fault_tally("slo-demote", proto.name());
                    }
                }
            }));
        }
        let pe_tracks = topo
            .all_procs()
            .map(|p| obs.track(TrackKind::Pe, p.0))
            .collect();
        for n in 0..topo.nnodes() {
            obs.track(TrackKind::Proxy, n as u32);
        }
        obs.track(TrackKind::Engine, 0);

        Arc::new(ShmemMachine {
            sim,
            cluster,
            gpus,
            ib,
            cfg,
            layout,
            pes,
            proxies,
            health,
            membership,
            member_seen: Mutex::new(MemberSeen::default()),
            obs,
            pe_tracks,
        })
    }

    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn gpus(&self) -> &Arc<GpuRuntime> {
        &self.gpus
    }

    pub fn ib(&self) -> &Arc<IbVerbs> {
        &self.ib
    }

    pub fn cfg(&self) -> &RuntimeConfig {
        &self.cfg
    }

    pub fn layout(&self) -> &HeapLayout {
        &self.layout
    }

    pub fn pe_state(&self, p: ProcId) -> &PeState {
        &self.pes[p.index()]
    }

    pub fn proxy(&self, node: pcie_sim::NodeId) -> &ProxyStats {
        &self.proxies[node.index()]
    }

    pub fn n_pes(&self) -> usize {
        self.cluster.topo().nprocs()
    }

    /// The machine's observability recorder (level set by
    /// [`RuntimeConfig::obs_level`]).
    pub fn obs(&self) -> &Arc<Recorder> {
        &self.obs
    }

    /// The pre-registered observability track of a PE.
    pub fn pe_track(&self, p: ProcId) -> TrackId {
        self.pe_tracks[p.index()]
    }

    /// The pre-registered observability track of a node's proxy.
    pub fn proxy_track(&self, node: pcie_sim::NodeId) -> TrackId {
        self.obs.track(TrackKind::Proxy, node.0)
    }

    /// Mint the correlation token for a new RMA/sync op on `me`: a
    /// globally unique id plus the deterministic sampling verdict
    /// (1-in-N by per-PE sequence number; see
    /// [`crate::config::RuntimeConfig::obs_sample`]).
    pub(crate) fn next_op(&self, me: ProcId) -> OpToken {
        let seq = self
            .pe_state(me)
            .op_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        OpToken {
            // PE is offset by one so PE 0's first op is not id 0
            id: ((me.0 as u64 + 1) << 32) | (seq & 0xffff_ffff),
            sampled: self.obs.op_sampled(seq),
        }
    }

    /// Record one finished RMA/sync op: latency histogram (Counters+),
    /// op span, protocol-decision record and flow-start event (Spans,
    /// when the op is sampled). `alts` lazily fills the
    /// candidate/threshold lists — it only runs when spans are on.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn obs_op(
        &self,
        op: &'static str,
        me: ProcId,
        peer: ProcId,
        chosen: crate::state::Protocol,
        len: u64,
        src_dev: bool,
        dst_dev: bool,
        same_node: bool,
        socket_rel: &'static str,
        t0: sim_core::SimTime,
        t1: sim_core::SimTime,
        token: OpToken,
        alts: impl FnOnce(&mut obs::Cands, &mut obs::Thresholds),
    ) {
        if !self.obs.counters_on() {
            return;
        }
        self.obs.op_latency_at(op, chosen.name(), len, t1.since(t0), t1);
        if !self.obs.spans_on() || !token.sampled {
            return;
        }
        let track = self.pe_track(me);
        let mut d = obs::Decision {
            op,
            size: len,
            src_pe: me.0,
            dst_pe: peer.0,
            src_dev,
            dst_dev,
            same_node,
            chosen: chosen.name(),
            op_id: token.id,
            size_class: obs::hist::bucket_index(len) as u8,
            socket_rel,
            tsource: if self.cfg.thresholds_loaded {
                "thresholds-v1"
            } else {
                "builtin"
            },
            ..Default::default()
        };
        alts(&mut d.candidates, &mut d.thresholds);
        self.obs.decision(track, t0, d);
        // Flow start at the op's origin: the matching flow-end instants
        // (emitted by the protocol layer at local or remote completion)
        // share the id, so Chrome draws an arrow from the op span to
        // wherever the data actually landed.
        self.obs.instant(
            track,
            "op-flow",
            t0,
            obs::Payload::FlowStart { id: token.id },
        );
        self.obs.span(
            track,
            op,
            t0,
            t1,
            obs::Payload::Op {
                op,
                protocol: chosen.name(),
                size: len,
                src_pe: me.0,
                dst_pe: peer.0,
                src_dev,
                dst_dev,
                same_node,
                op_id: token.id,
            },
        );
    }

    /// Capability fault: is GDR (HCA DMA into/out of GPU memory)
    /// administratively disabled on the node of `p` by the fault plan?
    pub(crate) fn gdr_disabled_at(&self, p: ProcId) -> bool {
        self.cfg
            .faults
            .gdr_disabled(self.cluster.topo().node_of(p).0 as usize)
    }

    /// Reachability fault: is the direct/GDR fabric from `me` toward
    /// `peer` severed by an asymmetric cut right now? Proxy and
    /// host-staged paths stay reachable, so dispatch reroutes onto them
    /// instead of erroring (ZERO-cost single branch when unfaulted).
    pub(crate) fn cut_now(&self, me: ProcId, peer: ProcId) -> bool {
        self.cfg.faults.n_partitions > 0
            && self
                .cfg
                .faults
                .cut_active(me.0, peer.0, self.sim.now().0 / sim_core::PS_PER_NS)
    }

    /// Extra proxy/progress-agent delay on `node` at `now` from the
    /// fault plan's stall windows (ZERO when unfaulted).
    pub(crate) fn proxy_stall_extra(&self, node: pcie_sim::NodeId, now: SimTime) -> SimDuration {
        let ns = self
            .cfg
            .faults
            .proxy_stall_extra_ns(node.0 as usize, now.0 / sim_core::PS_PER_NS);
        SimDuration::from_ns(ns)
    }

    /// Restart-aware proxy stall: like [`Self::proxy_stall_extra`], but
    /// the stall is capped at the fault window's end plus one signal
    /// latency — the window closing models the proxy agent restarting
    /// and re-driving the transfer's remaining chunks, so a chunk never
    /// sleeps out a stall that outlives its window. The first chunk of
    /// an op that benefits from the cap records a `proxy-restart`
    /// instant (deduplicated through `restart_seen`). ZERO when no
    /// window covers `now`.
    pub(crate) fn proxy_stall_or_restart(
        &self,
        node: pcie_sim::NodeId,
        now: SimTime,
        token: OpToken,
        restart_seen: &std::sync::atomic::AtomicBool,
    ) -> SimDuration {
        let now_ns = now.0 / sim_core::PS_PER_NS;
        let Some((end_ns, extra_ns)) = self
            .cfg
            .faults
            .proxy_stall_window_ns(node.0 as usize, now_ns)
        else {
            return SimDuration::ZERO;
        };
        // restarting costs one more signal latency: the recovered agent
        // must be re-signalled before it re-drives the remaining chunks
        let restart = SimDuration::from_ns(end_ns.saturating_sub(now_ns))
            + self.proxy_signal_latency();
        let extra = SimDuration::from_ns(extra_ns);
        if restart >= extra {
            return extra;
        }
        if !restart_seen.swap(true, std::sync::atomic::Ordering::Relaxed) {
            self.obs.fault_tally_at("proxy-restart", "proxy-pipeline", now);
            if self.obs.spans_on() && token.sampled {
                self.obs.instant(
                    self.proxy_track(node),
                    "proxy-restart",
                    now,
                    obs::Payload::Fault {
                        kind: "proxy-restart",
                        protocol: "proxy-pipeline",
                        op_id: token.id,
                    },
                );
            }
        }
        restart
    }

    /// Bytes currently allocated in `pe`'s staging area. Returns to 0
    /// once no transfer is in flight — the chaos suite uses this as its
    /// credit-leak probe after partial-delivery failures.
    pub fn staging_in_use(&self, pe: ProcId) -> u64 {
        self.pe_state(pe).staging_alloc.lock().allocated()
    }

    /// Every (node, protocol) pair whose health breaker is still demoted
    /// at virtual time `now_ns` — the campaign's breaker-recovery oracle
    /// probes this at a quiesce point past the last fault window plus
    /// cooldown, where it must be empty.
    pub fn demoted_protocols_at(&self, now_ns: u64) -> Vec<(usize, Protocol)> {
        self.health.demoted(now_ns)
    }

    /// Human-readable snapshot of every non-closed health breaker,
    /// for oracle-violation diagnostics.
    pub fn breaker_states(&self) -> Vec<String> {
        self.health.breaker_states()
    }

    /// The compiled fail-stop membership schedule of this job (inert
    /// when the fault plan schedules no crash).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Gate one point-to-point op from `me` against `peer`'s liveness.
    ///
    /// Unarmed plans short-circuit before any membership query, so
    /// unfaulted runs pay a single branch and stay byte-identical. A
    /// fail-stopped *issuer* fails immediately (its own hardware is
    /// gone). Against a fail-stopped peer the op blocks until the
    /// lease-expiry detection instant — nobody can know the peer is
    /// dead before its lease expires — then fails as
    /// [`TransferError::PeerDead`] carrying the eviction epoch; the
    /// first observer also emits the eviction lifecycle and opens the
    /// dead node's breakers until its rejoin instant. A crash whose
    /// rejoin beats the lease is a transparent blip: the op just blocks
    /// until the peer is back. Finally, the first op touching (or
    /// issued by) a *rejoined* peer drives the rejoin path: heap
    /// re-registration plus the breaker warm-up probe.
    pub(crate) fn peer_gate(
        self: &Arc<Self>,
        ctx: &TaskCtx,
        me: ProcId,
        peer: ProcId,
    ) -> Result<(), TransferError> {
        let ms = &self.membership;
        if !ms.armed() {
            return Ok(());
        }
        let now_ns = ctx.now().0 / sim_core::PS_PER_NS;
        if ms.crashed(me.0, now_ns) {
            if ms.detect_ns(me.0).is_none() {
                // my own transparent blip: activity freezes until the
                // rejoin instant, then resumes as if nothing happened
                let c = self
                    .cfg
                    .faults
                    .crash_of(me.0)
                    .expect("crashed issuer has a crash schedule");
                ctx.advance(SimDuration::from_ns(c.rejoin_ns - now_ns));
            } else {
                return Err(TransferError::PeerDead {
                    pe: me.0,
                    epoch: ms.epoch_at(now_ns),
                });
            }
        }
        // a rejoined issuer re-admits itself before its first post
        if let Some(rejoin) = ms.rejoin_ns(me.0) {
            if now_ns >= rejoin {
                self.note_rejoin(ctx, me);
            }
        }
        if ms.crashed(peer.0, now_ns) {
            return match ms.detect_ns(peer.0) {
                Some(detect) => {
                    if now_ns < detect {
                        ctx.advance(SimDuration::from_ns(detect - now_ns));
                    }
                    self.note_eviction(peer);
                    Err(TransferError::PeerDead {
                        pe: peer.0,
                        epoch: ms
                            .eviction_epoch(peer.0)
                            .expect("detectable crash has an eviction epoch"),
                    })
                }
                None => {
                    let c = self
                        .cfg
                        .faults
                        .crash_of(peer.0)
                        .expect("crashed peer has a crash schedule");
                    if now_ns < c.rejoin_ns {
                        ctx.advance(SimDuration::from_ns(c.rejoin_ns - now_ns));
                    }
                    Ok(())
                }
            };
        }
        if let Some(rejoin) = ms.rejoin_ns(peer.0) {
            if now_ns >= rejoin {
                self.note_rejoin(ctx, peer);
            }
        }
        // network partitions: a severed pair blocks until the fence
        // lands (nobody can know a link is cut before leases expire),
        // then fails typed; while a fence is up, minority-issued and
        // at-minority ops fail immediately. Blip splits just block.
        let now_ns = ctx.now().0 / sim_core::PS_PER_NS;
        match ms.partition_outcome(me.0, peer.0, now_ns) {
            None => {}
            Some(PartitionOutcome::BlockUntil(end_ns)) => {
                ctx.advance(SimDuration::from_ns(end_ns - now_ns));
            }
            Some(PartitionOutcome::FailAt { at_ns, pe, epoch }) => {
                if now_ns < at_ns {
                    ctx.advance(SimDuration::from_ns(at_ns - now_ns));
                }
                self.note_partitions(ctx.now());
                return Err(TransferError::Partitioned { pe, epoch });
            }
        }
        if ms.split_schedules().iter().any(|s| s.heal_ns <= now_ns) {
            // emit any heal whose instant has passed, even though this
            // op itself is unaffected — the merge is a view event
            self.note_partitions(ctx.now());
        }
        Ok(())
    }

    /// First-observer bookkeeping for split-partition lifecycle events:
    /// emit `partition` (window start, pre-fence epoch), `fence`
    /// (detection instant, fence epoch) and `heal` (merge instant, heal
    /// epoch) for every schedule whose instant is at or before `now`.
    /// Idempotent per schedule — exactly one observer emits each.
    pub(crate) fn note_partitions(&self, now: SimTime) {
        let now_ns = now.0 / sim_core::PS_PER_NS;
        for (i, s) in self.membership.split_schedules().iter().enumerate() {
            let rep = ProcId(s.minority.trailing_zeros());
            if s.fence_ns <= now_ns {
                let emit = {
                    let mut seen = self.member_seen.lock();
                    let fresh = seen.fenced & (1 << i) == 0;
                    seen.fenced |= 1 << i;
                    fresh
                };
                if emit {
                    let t_start = SimTime((s.fence_ns - DETECT_BOUND_NS) * sim_core::PS_PER_NS);
                    let t_fence = SimTime(s.fence_ns * sim_core::PS_PER_NS);
                    for (name, ts, ep) in [
                        ("partition", t_start, s.fence_epoch - 1),
                        ("fence", t_fence, s.fence_epoch),
                    ] {
                        self.obs.fault_tally_at(name, "membership", ts);
                        if self.obs.spans_on() {
                            self.obs.instant(
                                self.pe_track(rep),
                                name,
                                ts,
                                obs::Payload::Member { pe: rep.0, epoch: ep },
                            );
                        }
                    }
                }
            }
            if s.heal_ns <= now_ns {
                let emit = {
                    let mut seen = self.member_seen.lock();
                    let fresh = seen.healed & (1 << i) == 0;
                    seen.healed |= 1 << i;
                    fresh
                };
                if emit {
                    let t_heal = SimTime(s.heal_ns * sim_core::PS_PER_NS);
                    self.obs.fault_tally_at("heal", "membership", t_heal);
                    if self.obs.spans_on() {
                        self.obs.instant(
                            self.pe_track(rep),
                            "heal",
                            t_heal,
                            obs::Payload::Member { pe: rep.0, epoch: s.heal_epoch },
                        );
                    }
                }
            }
        }
    }

    /// First-observer bookkeeping for an asymmetric cut becoming
    /// visible: the dispatcher noticed the direct fabric from `me`
    /// toward `peer` is severed and rerouted. Emits one `partition`
    /// instant per cut fault (dedup by plan index).
    pub(crate) fn note_cut(&self, me: ProcId, peer: ProcId, ts: SimTime) {
        let now_ns = ts.0 / sim_core::PS_PER_NS;
        for (i, p) in self.cfg.faults.partitions().iter().enumerate() {
            if p.kind != faults::PartitionKind::Cut
                || p.a != me.0
                || p.b != peer.0
                || now_ns < p.start_ns
                || now_ns >= p.end_ns
            {
                continue;
            }
            let emit = {
                let mut seen = self.member_seen.lock();
                let fresh = seen.cut & (1 << i) == 0;
                seen.cut |= 1 << i;
                fresh
            };
            if emit {
                self.obs.fault_tally_at("partition", "membership", ts);
                if self.obs.spans_on() {
                    self.obs.instant(
                        self.pe_track(me),
                        "partition",
                        ts,
                        obs::Payload::Member {
                            pe: peer.0,
                            epoch: self.membership.epoch_at(now_ns),
                        },
                    );
                }
            }
        }
    }

    /// First-observer bookkeeping for `peer`'s eviction: emit the
    /// `pe-dead` / `evict` / `view-change` lifecycle at its canonical
    /// plan-derived instants and open every breaker of the dead node
    /// until the peer's rejoin instant (`u64::MAX` when it never
    /// rejoins). Idempotent — exactly one observer emits.
    pub(crate) fn note_eviction(&self, peer: ProcId) {
        {
            let mut seen = self.member_seen.lock();
            if seen.dead & (1 << peer.0) != 0 {
                return;
            }
            seen.dead |= 1 << peer.0;
        }
        let ms = &self.membership;
        let at_ns = self
            .cfg
            .faults
            .crash_of(peer.0)
            .expect("evicted peer has a crash schedule")
            .at_ns;
        let detect_ns = ms.detect_ns(peer.0).expect("evicted peer has a detect instant");
        let epoch = ms.eviction_epoch(peer.0).expect("evicted peer has an epoch");
        let t_at = SimTime(at_ns * sim_core::PS_PER_NS);
        let t_detect = SimTime(detect_ns * sim_core::PS_PER_NS);
        for (name, ts, ep) in [
            ("pe-dead", t_at, epoch - 1),
            ("evict", t_detect, epoch),
            ("view-change", t_detect, epoch),
        ] {
            self.obs.fault_tally_at(name, "membership", ts);
            if self.obs.spans_on() {
                self.obs.instant(
                    self.pe_track(peer),
                    name,
                    ts,
                    obs::Payload::Member { pe: peer.0, epoch: ep },
                );
            }
        }
        // The dead node really is demoted on every protocol, so tally
        // the demotes — this also keeps the promote<=demote counter
        // invariant when post-rejoin successes close lapsed breakers.
        let token = OpToken { id: 0, sampled: true };
        for p in Protocol::ALL {
            self.obs_health(peer, t_detect, "demote", p, token);
        }
        let until = ms.rejoin_ns(peer.0).unwrap_or(u64::MAX);
        self.health.mark_dead(self.node_idx(peer), until);
    }

    /// First-observer bookkeeping for `subject`'s rejoin: emit the
    /// `rejoin` instant, charge the symmetric-heap re-registration
    /// cost to the observing op, and drive the warm-up probe through
    /// the breaker's half-open state so the `probe`/`promote` pair
    /// lands in the trace. A rejoin whose death was never observed is
    /// equally invisible (nothing was demoted or emitted).
    fn note_rejoin(self: &Arc<Self>, ctx: &TaskCtx, subject: ProcId) {
        let ms = &self.membership;
        let Some(rejoin_ns) = ms.rejoin_ns(subject.0) else {
            return;
        };
        {
            let mut seen = self.member_seen.lock();
            if seen.dead & (1 << subject.0) == 0 || seen.rejoined & (1 << subject.0) != 0 {
                return;
            }
            seen.rejoined |= 1 << subject.0;
        }
        let t_rejoin = SimTime(rejoin_ns * sim_core::PS_PER_NS);
        self.obs.fault_tally_at("rejoin", "membership", t_rejoin);
        if self.obs.spans_on() {
            self.obs.instant(
                self.pe_track(subject),
                "rejoin",
                t_rejoin,
                obs::Payload::Member {
                    pe: subject.0,
                    epoch: ms.epoch_at(rejoin_ns),
                },
            );
        }
        // symmetric-heap re-registration: descriptor re-exchange + MR
        // re-registration, charged to the op that re-admits the peer
        ctx.advance(SimDuration::from_ns(REJOIN_REREG_NS));
        // Warm-up probe through the real breaker: mark_dead left the
        // node's breakers Open{until: rejoin}, which has now lapsed, so
        // consulting the probe protocol admits the half-open trial.
        let node = self.node_idx(subject);
        let token = OpToken { id: 0, sampled: true };
        let now_ns = ctx.now().0 / sim_core::PS_PER_NS;
        self.health.mark_rejoined(node, Protocol::HostRdma, rejoin_ns);
        if let Route::Probe { first: true } =
            self.health.consult(node, Protocol::HostRdma, now_ns)
        {
            self.obs_health(subject, ctx.now(), "probe", Protocol::HostRdma, token);
            ctx.advance(SimDuration::from_ns(REJOIN_PROBE_NS));
            if self
                .health
                .record_success(node, Protocol::HostRdma, ctx.now().0 / sim_core::PS_PER_NS)
                .is_some()
            {
                self.obs_health(subject, ctx.now(), "promote", Protocol::HostRdma, token);
            }
        }
    }

    /// Record one injected transient fault: tally (Counters+) and a
    /// `fault` instant on the PE's track (Spans, sampled ops).
    pub(crate) fn obs_fault(
        &self,
        me: ProcId,
        ts: SimTime,
        kind: &'static str,
        protocol: &'static str,
        token: OpToken,
    ) {
        self.obs.fault_tally_at("injected", protocol, ts);
        if self.obs.spans_on() && token.sampled {
            self.obs.instant(
                self.pe_track(me),
                "fault",
                ts,
                obs::Payload::Fault {
                    kind,
                    protocol,
                    op_id: token.id,
                },
            );
        }
    }

    /// Record one retry decision (attempt number + chosen backoff).
    pub(crate) fn obs_retry(
        &self,
        me: ProcId,
        ts: SimTime,
        protocol: &'static str,
        attempt: u32,
        backoff_ns: u64,
        token: OpToken,
    ) {
        self.obs.fault_tally_at("retried", protocol, ts);
        if self.obs.spans_on() && token.sampled {
            self.obs.instant(
                self.pe_track(me),
                "retry",
                ts,
                obs::Payload::Retry {
                    protocol,
                    attempt,
                    backoff_ns,
                    op_id: token.id,
                },
            );
        }
    }

    /// Record one event-context chunk retry (attempt number + backoff).
    /// Distinct from [`Self::obs_retry`] so traces and gdrprof can tell
    /// chunk-level replays apart from whole-op post retries.
    pub(crate) fn obs_chunk_retry(
        &self,
        me: ProcId,
        ts: SimTime,
        protocol: &'static str,
        attempt: u32,
        backoff_ns: u64,
        token: OpToken,
    ) {
        self.obs.fault_tally_at("chunk-retried", protocol, ts);
        if self.obs.spans_on() && token.sampled {
            self.obs.instant(
                self.pe_track(me),
                "chunk-retry",
                ts,
                obs::Payload::Retry {
                    protocol,
                    attempt,
                    backoff_ns,
                    op_id: token.id,
                },
            );
        }
    }

    /// Record a partial delivery: some chunks of `token`'s transfer
    /// exhausted their retries, so only `delivered` of `total` bytes
    /// landed and the op is returning `TransferError::PartialDelivery`.
    pub(crate) fn obs_partial(
        &self,
        me: ProcId,
        ts: SimTime,
        protocol: &'static str,
        delivered: u64,
        total: u64,
        token: OpToken,
    ) {
        self.obs.fault_tally_at("partial", protocol, ts);
        if self.obs.spans_on() && token.sampled {
            self.obs.instant(
                self.pe_track(me),
                "partial-delivery",
                ts,
                obs::Payload::PartialDelivery {
                    protocol,
                    delivered,
                    total,
                    op_id: token.id,
                },
            );
        }
    }

    /// Record a protocol fallback as a first-class decision: the
    /// dispatcher re-routed `op` from `from` to `to` because the
    /// preferred protocol is faulted or capability-disabled.
    pub(crate) fn obs_fallback(
        &self,
        me: ProcId,
        ts: SimTime,
        op: &'static str,
        from: &'static str,
        to: &'static str,
        token: OpToken,
    ) {
        self.obs.fault_tally_at("fallback", from, ts);
        if self.obs.spans_on() && token.sampled {
            self.obs.instant(
                self.pe_track(me),
                "fallback",
                ts,
                obs::Payload::Fallback {
                    op,
                    from,
                    to,
                    op_id: token.id,
                },
            );
        }
    }

    fn node_idx(&self, p: ProcId) -> usize {
        self.cluster.topo().node_of(p).index()
    }

    /// Record a health-breaker transition or probe admission
    /// (`demote` / `probe` / `promote`) for `proto` on `me`'s node:
    /// exact counter (Counters+) plus an instant on the PE's track
    /// when the triggering op is sampled (Spans).
    pub(crate) fn obs_health(
        &self,
        me: ProcId,
        ts: SimTime,
        event: &'static str,
        proto: Protocol,
        token: OpToken,
    ) {
        self.obs.fault_tally_at(event, proto.name(), ts);
        if self.obs.spans_on() && token.sampled {
            self.obs.instant(
                self.pe_track(me),
                event,
                ts,
                obs::Payload::Health {
                    protocol: proto.name(),
                    op_id: token.id,
                },
            );
        }
    }

    /// Feed one injected fault on `proto` into the health breaker of
    /// `me`'s node, reporting the `demote` when it opens the circuit.
    pub(crate) fn health_on_failure(&self, me: ProcId, ts: SimTime, proto: Protocol, token: OpToken) {
        let now_ns = ts.0 / sim_core::PS_PER_NS;
        if self
            .health
            .record_failure(self.node_idx(me), proto, now_ns)
            .is_some()
        {
            self.obs_health(me, ts, "demote", proto, token);
        }
    }

    /// Feed one clean post on `proto` into the health breaker of `me`'s
    /// node, reporting the `promote` when it closes the circuit.
    pub(crate) fn health_on_success(&self, me: ProcId, ts: SimTime, proto: Protocol, token: OpToken) {
        let now_ns = ts.0 / sim_core::PS_PER_NS;
        if self
            .health
            .record_success(self.node_idx(me), proto, now_ns)
            .is_some()
        {
            self.obs_health(me, ts, "promote", proto, token);
        }
    }

    /// Consult the health breaker for `proto` at dispatch time: true
    /// means the protocol is demoted and selection must fall back. A
    /// lapsed cooldown admits the calling op as the half-open probe
    /// (reported once per cooldown as a `probe` instant).
    pub(crate) fn health_avoid(&self, me: ProcId, ts: SimTime, proto: Protocol, token: OpToken) -> bool {
        let now_ns = ts.0 / sim_core::PS_PER_NS;
        match self.health.consult(self.node_idx(me), proto, now_ns) {
            Route::Use => false,
            Route::Probe { first } => {
                if first {
                    self.obs_health(me, ts, "probe", proto, token);
                }
                false
            }
            Route::Avoid => true,
        }
    }

    /// Non-mutating demotion check for the serviced-predicates (which
    /// run outside dispatch and must not admit probes or emit events).
    pub(crate) fn health_demoted_now(&self, me: ProcId, proto: Protocol) -> bool {
        let now_ns = self.sim.now().0 / sim_core::PS_PER_NS;
        self.health.demoted_now(self.node_idx(me), proto, now_ns)
    }

    /// Emit the flow-end instant for `token` at `ts` on `track` (used by
    /// blocking protocols where the op's return *is* its completion).
    pub(crate) fn flow_end_at(&self, track: TrackId, ts: SimTime, token: OpToken) {
        if !token.sampled || !self.obs.spans_on() {
            return;
        }
        self.obs
            .instant(track, "op-flow", ts, obs::Payload::FlowEnd { id: token.id });
    }

    /// Arrange for the flow-end instant of `token` to fire on `track`
    /// when `comp` reaches `threshold` — the non-blocking counterpart of
    /// [`Self::flow_end_at`], used where delivery completes inside a
    /// scheduler callback long after the op call returned.
    pub(crate) fn flow_end_on(
        self: &Arc<Self>,
        ctx: &sim_core::TaskCtx,
        comp: &Completion,
        threshold: u64,
        track: TrackId,
        token: OpToken,
    ) {
        if !token.sampled || !self.obs.spans_on() {
            return;
        }
        let m = self.clone();
        let comp = comp.clone();
        ctx.with_sched(|s| {
            s.call_on(
                &comp,
                threshold,
                Box::new(move |s| {
                    m.obs.instant(
                        track,
                        "op-flow",
                        s.now(),
                        obs::Payload::FlowEnd { id: token.id },
                    );
                }),
            );
        });
    }

    /// Text observability report: latency histograms, hardware
    /// utilization, and the event-engine counters.
    pub fn obs_report(&self) -> String {
        use std::fmt::Write as _;
        let mut s = self.obs.summary();
        let es = self.sim.stats();
        let _ = writeln!(
            s,
            "engine: {} events executed, heap high-water {}, \
             {} completions signalled, {} time-advance stalls",
            es.events_executed, es.max_heap_len, es.completions_signalled, es.time_advance_stalls
        );
        s
    }

    /// Write the Chrome `trace_event` JSON for this machine's recording.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.obs.chrome_trace())
    }

    /// If `GDR_SHMEM_TRACE` names a file and span recording is on, write
    /// the Chrome trace there and return the path (driver convenience).
    pub fn write_trace_if_requested(&self) -> Option<std::path::PathBuf> {
        if !self.obs.spans_on() {
            return None;
        }
        let path = std::path::PathBuf::from(std::env::var_os("GDR_SHMEM_TRACE")?);
        match self.write_chrome_trace(&path) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("obs: failed to write trace to {}: {e}", path.display());
                None
            }
        }
    }

    /// Polling interval as a duration.
    pub fn poll_interval(&self) -> SimDuration {
        SimDuration::from_ns(self.cfg.poll_interval_ns)
    }

    /// Launch one task per PE; each receives a [`Pe`] handle. Virtual
    /// time persists across consecutive `run` calls on one machine.
    pub fn run<T, F>(self: &Arc<Self>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Pe) -> T + Send + Sync,
    {
        let me = self.clone();
        self.sim.run(self.n_pes(), move |ctx| {
            let id = ProcId(ctx.rank() as u32);
            let mut pe = Pe::new(me.clone(), ctx, id);
            f(&mut pe)
        })
    }
}

impl std::fmt::Debug for ShmemMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShmemMachine({} PEs, design {})",
            self.n_pes(),
            self.cfg.design.name()
        )
    }
}
