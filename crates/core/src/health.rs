//! Health-driven protocol demotion: per-(node, protocol) circuit
//! breakers over a sliding virtual-time failure window.
//!
//! Every CQE fault recorded by the retry engines (`post_with_retry`,
//! `chunk_post_with_retry`, the sync-flag loop) feeds a breaker keyed
//! by the posting process's node and the protocol that drew the fault.
//! When a breaker sees `health_threshold` failures inside the sliding
//! `health_window_ns` it opens — protocol selection then *demotes* the
//! protocol, routing new ops through the same fallback matrix the
//! capability faults use (direct GDR → host-staged / proxy). After
//! `health_cooldown_ns` the breaker admits a single half-open *probe*;
//! a clean post *promotes* the protocol back, a failed probe re-opens
//! it for another cooldown.
//!
//! The monitor is inert (`enabled == false`) unless the run has an
//! active fault plan: every method short-circuits before touching the
//! lock, so unfaulted runs take exactly their pre-health code paths and
//! produce byte-identical traces.

use crate::state::Protocol;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// A state transition worth reporting (obs instants + counters).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transition {
    /// The breaker opened: the protocol is demoted for a cooldown.
    Demote,
    /// The breaker closed again: the protocol is re-promoted.
    Promote,
}

/// Routing advice from [`HealthMonitor::consult`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Route {
    /// Breaker closed — use the protocol normally.
    Use,
    /// Breaker half-open — admit this op as a probe. `first` is true
    /// for the consult that moved the breaker out of `Open` (so the
    /// caller reports exactly one `probe` event per cooldown).
    Probe { first: bool },
    /// Breaker open and still cooling down — route around the protocol.
    Avoid,
}

#[derive(Default)]
enum BreakerState {
    #[default]
    Closed,
    Open {
        until_ns: u64,
    },
    HalfOpen,
}

#[derive(Default)]
struct Breaker {
    state: BreakerState,
    /// Failure timestamps (ns) inside the sliding window, oldest first.
    fails: VecDeque<u64>,
}

/// The per-machine monitor: one breaker per (node, protocol).
///
/// Keying by node matches the failure domain — a flaky HCA or PCIe
/// root complex takes out every PE behind it, and the proxy/pipeline
/// chunk posts already draw from per-process streams on that node.
pub struct HealthMonitor {
    enabled: bool,
    window_ns: u64,
    threshold: u32,
    cooldown_ns: u64,
    breakers: Mutex<Vec<[Breaker; Protocol::COUNT]>>,
}

impl HealthMonitor {
    pub fn new(plan: &faults::FaultPlan, nnodes: usize) -> HealthMonitor {
        HealthMonitor {
            enabled: plan.active(),
            window_ns: plan.health_window_ns,
            threshold: plan.health_threshold,
            cooldown_ns: plan.health_cooldown_ns,
            breakers: Mutex::new(
                (0..nnodes)
                    .map(|_| std::array::from_fn(|_| Breaker::default()))
                    .collect(),
            ),
        }
    }

    /// Record one injected fault at virtual time `now_ns`. Returns
    /// `Some(Demote)` when this failure opens the breaker: a closed
    /// breaker crossing the window threshold, a failed half-open
    /// probe, or a failure right after an expired cooldown.
    pub fn record_failure(&self, node: usize, proto: Protocol, now_ns: u64) -> Option<Transition> {
        if !self.enabled {
            return None;
        }
        let mut g = self.breakers.lock();
        let b = &mut g[node][proto as usize];
        match b.state {
            BreakerState::Closed => {
                b.fails.push_back(now_ns);
                while b
                    .fails
                    .front()
                    .is_some_and(|&t| t + self.window_ns <= now_ns)
                {
                    b.fails.pop_front();
                }
                if b.fails.len() as u32 >= self.threshold {
                    b.fails.clear();
                    b.state = BreakerState::Open {
                        until_ns: now_ns + self.cooldown_ns,
                    };
                    Some(Transition::Demote)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                b.state = BreakerState::Open {
                    until_ns: now_ns + self.cooldown_ns,
                };
                Some(Transition::Demote)
            }
            // An implicitly admitted post (a path that doesn't consult,
            // e.g. sync flags) failed after the cooldown lapsed: re-arm.
            BreakerState::Open { until_ns } if now_ns >= until_ns => {
                b.state = BreakerState::Open {
                    until_ns: now_ns + self.cooldown_ns,
                };
                Some(Transition::Demote)
            }
            BreakerState::Open { .. } => None,
        }
    }

    /// Record one clean post. Returns `Some(Promote)` when it closes a
    /// half-open breaker (or an open one whose cooldown has lapsed, for
    /// paths that post without consulting first).
    pub fn record_success(&self, node: usize, proto: Protocol, now_ns: u64) -> Option<Transition> {
        if !self.enabled {
            return None;
        }
        let mut g = self.breakers.lock();
        let b = &mut g[node][proto as usize];
        match b.state {
            BreakerState::HalfOpen => {
                b.state = BreakerState::Closed;
                b.fails.clear();
                Some(Transition::Promote)
            }
            BreakerState::Open { until_ns } if now_ns >= until_ns => {
                b.state = BreakerState::Closed;
                b.fails.clear();
                Some(Transition::Promote)
            }
            _ => None,
        }
    }

    /// Fail-stop eviction: force every breaker of `node` open until
    /// `until_ns` — the dead peer's rejoin instant, or `u64::MAX` when
    /// it never rejoins. A dead node must not be probed during the
    /// outage; at `until_ns` the breakers lapse and the next consult
    /// admits the half-open warm-up probe of the rejoin path.
    pub fn mark_dead(&self, node: usize, until_ns: u64) {
        if !self.enabled {
            return;
        }
        let mut g = self.breakers.lock();
        for b in g[node].iter_mut() {
            b.state = BreakerState::Open { until_ns };
            b.fails.clear();
        }
    }

    /// Rejoin counterpart of [`Self::mark_dead`]: close every breaker
    /// of `node` except `probe`, which is left open-until-`rejoin_ns`
    /// (already lapsed by the time this runs) so the next consult
    /// admits exactly one half-open warm-up probe. Closing the rest
    /// keeps later successes from minting unpaired promotes out of
    /// lapsed-open breakers.
    pub fn mark_rejoined(&self, node: usize, probe: Protocol, rejoin_ns: u64) {
        if !self.enabled {
            return;
        }
        let mut g = self.breakers.lock();
        for (i, b) in g[node].iter_mut().enumerate() {
            b.state = if i == probe as usize {
                BreakerState::Open { until_ns: rejoin_ns }
            } else {
                BreakerState::Closed
            };
            b.fails.clear();
        }
    }

    /// Ask whether protocol selection may use `proto` right now. Moves
    /// an open breaker whose cooldown has lapsed to half-open (the
    /// caller's op becomes the probe).
    pub fn consult(&self, node: usize, proto: Protocol, now_ns: u64) -> Route {
        if !self.enabled {
            return Route::Use;
        }
        let mut g = self.breakers.lock();
        let b = &mut g[node][proto as usize];
        match b.state {
            BreakerState::Closed => Route::Use,
            BreakerState::HalfOpen => Route::Probe { first: false },
            BreakerState::Open { until_ns } if now_ns >= until_ns => {
                b.state = BreakerState::HalfOpen;
                Route::Probe { first: true }
            }
            BreakerState::Open { .. } => Route::Avoid,
        }
    }

    /// Non-mutating check used by the serviced-predicates: is `proto`
    /// demoted (open, cooldown not yet lapsed) at `now_ns`?
    pub fn demoted_now(&self, node: usize, proto: Protocol, now_ns: u64) -> bool {
        if !self.enabled {
            return false;
        }
        let g = self.breakers.lock();
        matches!(
            g[node][proto as usize].state,
            BreakerState::Open { until_ns } if now_ns < until_ns
        )
    }

    /// Non-mutating sweep of every breaker still demoted at `now_ns` —
    /// the chaos campaign's breaker-recovery oracle. Empty for an inert
    /// monitor and for any instant past the last cooldown.
    pub fn demoted(&self, now_ns: u64) -> Vec<(usize, Protocol)> {
        if !self.enabled {
            return Vec::new();
        }
        let g = self.breakers.lock();
        let mut out = Vec::new();
        for (node, per_node) in g.iter().enumerate() {
            for (pi, b) in per_node.iter().enumerate() {
                if matches!(b.state, BreakerState::Open { until_ns } if now_ns < until_ns) {
                    out.push((node, Protocol::ALL[pi]));
                }
            }
        }
        out
    }

    /// Human-readable snapshot of every non-closed breaker, in
    /// (node, protocol) order — diagnostic payload for oracle failures.
    pub fn breaker_states(&self) -> Vec<String> {
        if !self.enabled {
            return Vec::new();
        }
        let g = self.breakers.lock();
        let mut out = Vec::new();
        for (node, per_node) in g.iter().enumerate() {
            for (pi, b) in per_node.iter().enumerate() {
                let st = match b.state {
                    BreakerState::Closed => continue,
                    BreakerState::Open { until_ns } => format!("open until {until_ns}"),
                    BreakerState::HalfOpen => "half-open".to_string(),
                };
                out.push(format!("node{node}/{}: {st}", Protocol::ALL[pi].name()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed() -> HealthMonitor {
        let plan = faults::FaultPlan::default()
            .with_cqe_errors(1)
            .with_health(1_000, 3, 5_000);
        HealthMonitor::new(&plan, 2)
    }

    #[test]
    fn inert_without_active_plan() {
        let h = HealthMonitor::new(&faults::FaultPlan::default(), 1);
        for t in 0..10 {
            assert_eq!(h.record_failure(0, Protocol::DirectGdr, t), None);
        }
        assert_eq!(h.consult(0, Protocol::DirectGdr, 100), Route::Use);
        assert!(!h.demoted_now(0, Protocol::DirectGdr, 100));
    }

    #[test]
    fn demotes_after_threshold_within_window() {
        let h = armed();
        assert_eq!(h.record_failure(0, Protocol::DirectGdr, 100), None);
        assert_eq!(h.record_failure(0, Protocol::DirectGdr, 200), None);
        assert_eq!(
            h.record_failure(0, Protocol::DirectGdr, 300),
            Some(Transition::Demote)
        );
        assert_eq!(h.consult(0, Protocol::DirectGdr, 400), Route::Avoid);
        assert!(h.demoted_now(0, Protocol::DirectGdr, 400));
        // other node / other protocol unaffected
        assert_eq!(h.consult(1, Protocol::DirectGdr, 400), Route::Use);
        assert_eq!(h.consult(0, Protocol::ProxyPipeline, 400), Route::Use);
    }

    #[test]
    fn window_slides_and_old_failures_expire() {
        let h = armed();
        h.record_failure(0, Protocol::DirectGdr, 0);
        h.record_failure(0, Protocol::DirectGdr, 500);
        // first failure fell out of the 1 µs window: still closed
        assert_eq!(h.record_failure(0, Protocol::DirectGdr, 1_100), None);
        assert_eq!(h.consult(0, Protocol::DirectGdr, 1_100), Route::Use);
    }

    #[test]
    fn cooldown_probe_then_promote() {
        let h = armed();
        for t in [100, 200, 300] {
            h.record_failure(0, Protocol::DirectGdr, t);
        }
        assert_eq!(h.consult(0, Protocol::DirectGdr, 1_000), Route::Avoid);
        // cooldown (5 µs from the demote at t=300) lapses
        assert_eq!(
            h.consult(0, Protocol::DirectGdr, 5_400),
            Route::Probe { first: true }
        );
        assert_eq!(
            h.consult(0, Protocol::DirectGdr, 5_500),
            Route::Probe { first: false }
        );
        assert_eq!(
            h.record_success(0, Protocol::DirectGdr, 5_600),
            Some(Transition::Promote)
        );
        assert_eq!(h.consult(0, Protocol::DirectGdr, 5_700), Route::Use);
        assert_eq!(h.record_success(0, Protocol::DirectGdr, 5_800), None);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let h = armed();
        for t in [100, 200, 300] {
            h.record_failure(0, Protocol::DirectGdr, t);
        }
        assert_eq!(
            h.consult(0, Protocol::DirectGdr, 5_400),
            Route::Probe { first: true }
        );
        assert_eq!(
            h.record_failure(0, Protocol::DirectGdr, 5_500),
            Some(Transition::Demote)
        );
        assert_eq!(h.consult(0, Protocol::DirectGdr, 5_600), Route::Avoid);
        // success without a consult after the second cooldown lapses
        // (a path that posts without asking) still re-promotes
        assert_eq!(
            h.record_success(0, Protocol::DirectGdr, 11_000),
            Some(Transition::Promote)
        );
    }

    #[test]
    fn mark_dead_opens_every_protocol_until_rejoin() {
        let h = armed();
        h.mark_dead(1, 500_000);
        for p in Protocol::ALL {
            assert_eq!(h.consult(1, p, 499_999), Route::Avoid, "{}", p.name());
            assert!(h.demoted_now(1, p, 499_999), "{}", p.name());
        }
        // the outage is per-node: the survivor's breakers stay closed
        assert_eq!(h.consult(0, Protocol::DirectGdr, 499_999), Route::Use);
        // a never-rejoining peer (until = MAX) never lapses to a probe
        h.mark_dead(1, u64::MAX);
        assert_eq!(h.consult(1, Protocol::HostRdma, u64::MAX - 1), Route::Avoid);
    }

    #[test]
    fn mark_rejoined_leaves_one_halfopen_probe_then_promotes() {
        let h = armed();
        h.mark_dead(1, 500_000);
        h.mark_rejoined(1, Protocol::HostRdma, 500_000);
        // every non-probe protocol closed outright: no unpaired promotes
        for p in Protocol::ALL {
            if p != Protocol::HostRdma {
                assert_eq!(h.consult(1, p, 500_001), Route::Use, "{}", p.name());
            }
        }
        // the probe protocol admits exactly one first-probe consult,
        // and its warm-up success mints the promote
        assert_eq!(
            h.consult(1, Protocol::HostRdma, 500_001),
            Route::Probe { first: true }
        );
        assert_eq!(
            h.consult(1, Protocol::HostRdma, 500_002),
            Route::Probe { first: false }
        );
        assert_eq!(
            h.record_success(1, Protocol::HostRdma, 500_003),
            Some(Transition::Promote)
        );
        assert_eq!(h.consult(1, Protocol::HostRdma, 500_004), Route::Use);
    }
}
