//! # faults — deterministic seeded fault plans
//!
//! A [`FaultPlan`] describes every anomaly the simulated stack can
//! inject, all derived from one seed so that identical plans replay
//! identical fault sequences in virtual time:
//!
//! - transient RDMA completion errors (CQE flush / retry-exceeded) at a
//!   per-post probability, with a modeled error-detection latency;
//! - late local completions (the CQE is delivered late by a fixed extra
//!   delay, at a per-post probability);
//! - per-link degradation and blackout windows (a bandwidth multiplier
//!   or a full outage over a virtual-time interval), targeting HCA TX
//!   links or a GPU's PCIe links;
//! - proxy-agent stalls (wakeups scheduled inside a window are delayed
//!   by an extra amount — a long stall models a crash + restart);
//! - a "GDR disabled on node N" capability fault (bitmask);
//! - correlated burst windows: a virtual-time interval during which
//!   *every* post drawn — pipeline chunks, proxy relays, serve-get
//!   replies, sync-area flag writes — fails at once, exercising
//!   recovery under simultaneous exhaustion;
//! - fail-stop crash faults (`crash=pe:at_ns[:rejoin_ns]`): a PE's
//!   HCA/proxy/GPU activity dies at a virtual instant and optionally
//!   rejoins later — detection, eviction, and rejoin semantics live in
//!   the core membership layer;
//! - network-partition faults (`partition=split:mask:start:end` /
//!   `partition=cut:a:b:start:end`): a per-pair reachability fault over
//!   a virtual-time window. A *split* severs every link between the
//!   masked PEs and the rest (quorum fencing and heal-merge semantics
//!   live in the core membership layer); a *cut* severs only the
//!   direct/GDR fabric from PE `a` toward PE `b`, leaving the
//!   proxy/host-staged paths reachable (protocol selection reroutes).
//!
//! The plan is `Copy` (fixed-capacity window arrays, no heap) so it can
//! live inside the runtime's `RuntimeConfig` without disturbing the
//! `let cfg = *self.cfg()` idiom. Randomness is a pure hash of
//! `(seed, stream, counter)` — no RNG state, so concurrent consumers
//! stay deterministic as long as each keeps its own program-ordered
//! counter.

/// Maximum link-fault windows in one plan.
pub const MAX_LINK_WINDOWS: usize = 4;
/// Maximum proxy-stall windows in one plan.
pub const MAX_PROXY_STALLS: usize = 4;
/// Maximum correlated burst windows in one plan.
pub const MAX_BURST_WINDOWS: usize = 4;
/// Maximum fail-stop crash faults in one plan.
pub const MAX_CRASHES: usize = 2;
/// Maximum network-partition faults in one plan.
pub const MAX_PARTITIONS: usize = 2;

/// Stream salt for the dedicated sync-area flag-write CQE stream:
/// `sync_flag_put` / `sync_data_put` posts draw from
/// `stream = poster | SYNC_STREAM` with their own program-ordered
/// counter, so arming sync faults never perturbs the RMA post streams
/// (existing seed trajectories stay byte-identical).
pub const SYNC_STREAM: u64 = 0x5359_4E43_0000_0000;

/// Which family of links a [`LinkWindow`] targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkScope {
    /// The TX link of node `index`'s HCA (`index == ALL` for every HCA).
    #[default]
    HcaTx,
    /// All five PCIe links of GPU `index` (`index == ALL` for every GPU).
    GpuPcie,
}

/// Wildcard index: the window applies to every link in its scope.
pub const ALL: u32 = u32::MAX;

/// One degradation or blackout window on a link.
///
/// `bw_permille` scales the link's effective bandwidth for transfers
/// that start inside `[start_ns, end_ns)`; `0` is a blackout — the
/// transfer cannot start until the window ends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkWindow {
    pub scope: LinkScope,
    /// Node index (HcaTx) or GPU index (GpuPcie); [`ALL`] for every link.
    pub index: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Bandwidth multiplier in permille (0 = blackout, 1000 = unchanged).
    pub bw_permille: u16,
}

/// One proxy-agent stall window: wakeups scheduled on `node` inside
/// `[start_ns, end_ns)` are delayed by `extra_ns` (crash + restart is
/// a long stall).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyStall {
    pub node: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    pub extra_ns: u64,
}

/// One correlated failure burst: every CQE draw inside
/// `[start_ns, end_ns)` fails, regardless of `cqe_permille` — modeling
/// a fabric hiccup that defeats every in-flight post at once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BurstWindow {
    pub start_ns: u64,
    pub end_ns: u64,
}

/// One fail-stop crash fault: PE `pe`'s HCA/proxy/GPU activity dies at
/// virtual instant `at_ns`. `rejoin_ns == 0` means the PE never comes
/// back; otherwise it rejoins (with symmetric-heap re-registration and
/// a breaker warm-up probe) at `rejoin_ns`. Detection, eviction, and
/// the epoch-numbered membership view derived from these faults live in
/// `crates/core/src/membership.rs` — the plan only carries the schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashFault {
    pub pe: u32,
    pub at_ns: u64,
    /// Rejoin instant; 0 = fail-stop forever.
    pub rejoin_ns: u64,
}

/// Which reachability shape a [`PartitionFault`] imposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PartitionKind {
    /// A clean two-sided split: every link between the PEs in `mask`
    /// and the PEs outside it is severed for the window. The membership
    /// layer fences the minority side (quorum rule) and heals the views
    /// back together after the window ends.
    #[default]
    Split,
    /// An asymmetric cut: only the direct/GDR fabric from PE `a`
    /// toward PE `b` is severed; the proxy and host-staged paths stay
    /// reachable, so protocol selection reroutes instead of erroring.
    /// Sever both directions with two `cut` tokens.
    Cut,
}

/// One network-partition fault over `[start_ns, end_ns)`.
///
/// For [`PartitionKind::Split`], `mask` is the bitmask of PEs on the
/// severed side (`a`/`b` unused); for [`PartitionKind::Cut`], `a`/`b`
/// name the ordered severed pair (`mask` unused). Detection, quorum
/// fencing, and heal-merge semantics live in
/// `crates/core/src/membership.rs` — the plan only carries the window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionFault {
    pub kind: PartitionKind,
    /// Split: bitmask of PEs on the severed (candidate-minority) side.
    pub mask: u64,
    /// Cut: source PE of the severed direct path.
    pub a: u32,
    /// Cut: destination PE of the severed direct path.
    pub b: u32,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// A complete, seeded fault plan. `FaultPlan::default()` injects
/// nothing; [`FaultPlan::active`] is the cheap hot-path gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every probabilistic draw in the plan.
    pub seed: u64,
    /// Per-RDMA-post probability of a transient CQE error, in permille.
    pub cqe_permille: u16,
    /// Modeled latency between posting and detecting a failed CQE.
    pub cqe_detect_ns: u64,
    /// Bounded retry budget for transient errors.
    pub max_retries: u32,
    /// Exponential backoff base (doubled per attempt) and cap.
    pub backoff_base_ns: u64,
    pub backoff_cap_ns: u64,
    /// Per-op completion timeout in virtual time; 0 disables timeouts.
    pub op_timeout_ns: u64,
    /// Bitmask of nodes whose GDR capability is disabled (no HCA
    /// peer-mapping of GPU memory: direct-GDR gather/scatter unusable).
    pub gdr_disabled_nodes: u64,
    /// Per-post probability of a late local completion, in permille.
    pub late_permille: u16,
    /// Extra delivery delay of a late completion.
    pub late_extra_ns: u64,
    pub link_windows: [LinkWindow; MAX_LINK_WINDOWS],
    pub n_link_windows: u8,
    pub proxy_stalls: [ProxyStall; MAX_PROXY_STALLS],
    pub n_proxy_stalls: u8,
    pub burst_windows: [BurstWindow; MAX_BURST_WINDOWS],
    pub n_burst_windows: u8,
    /// Fail-stop crash schedule (see [`CrashFault`]).
    pub crashes: [CrashFault; MAX_CRASHES],
    pub n_crashes: u8,
    /// Network-partition schedule (see [`PartitionFault`]).
    pub partitions: [PartitionFault; MAX_PARTITIONS],
    pub n_partitions: u8,
    /// Sliding virtual-time window over which the health tracker counts
    /// failures per protocol (see `crates/core/src/health.rs`).
    pub health_window_ns: u64,
    /// Failures inside the window that trip the circuit breaker.
    pub health_threshold: u32,
    /// Cooldown before a demoted protocol is probed half-open.
    pub health_cooldown_ns: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            cqe_permille: 0,
            cqe_detect_ns: 5_000,
            max_retries: 4,
            backoff_base_ns: 2_000,
            backoff_cap_ns: 64_000,
            op_timeout_ns: 0,
            gdr_disabled_nodes: 0,
            late_permille: 0,
            late_extra_ns: 20_000,
            link_windows: [LinkWindow::default(); MAX_LINK_WINDOWS],
            n_link_windows: 0,
            proxy_stalls: [ProxyStall::default(); MAX_PROXY_STALLS],
            n_proxy_stalls: 0,
            burst_windows: [BurstWindow::default(); MAX_BURST_WINDOWS],
            n_burst_windows: 0,
            crashes: [CrashFault::default(); MAX_CRASHES],
            n_crashes: 0,
            partitions: [PartitionFault::default(); MAX_PARTITIONS],
            n_partitions: 0,
            health_window_ns: 200_000,
            health_threshold: 3,
            health_cooldown_ns: 500_000,
        }
    }
}

/// splitmix64 — the finalizer used for all plan draws.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless deterministic hash of `(seed, stream, counter)`.
pub fn mix(seed: u64, stream: u64, counter: u64) -> u64 {
    splitmix(splitmix(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407)) ^ counter)
}

impl FaultPlan {
    /// True when any injection is configured (hot-path gate).
    pub fn active(&self) -> bool {
        self.cqe_permille > 0
            || self.late_permille > 0
            || self.gdr_disabled_nodes != 0
            || self.n_link_windows > 0
            || self.n_proxy_stalls > 0
            || self.op_timeout_ns > 0
            || self.n_burst_windows > 0
            || self.n_crashes > 0
            || self.n_partitions > 0
    }

    /// True when CQE draws can ever fail (per-post permille or a burst
    /// window): the arming gate for every post/chunk/sync retry engine.
    /// When false, every draw short-circuits and unfaulted runs keep
    /// their exact pre-fault event order.
    pub fn cqe_armed(&self) -> bool {
        self.cqe_permille > 0 || self.n_burst_windows > 0
    }

    /// Builder: seed every draw in the plan.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: transient CQE error rate in permille.
    pub fn with_cqe_errors(mut self, permille: u16) -> Self {
        self.cqe_permille = permille.min(1000);
        self
    }

    /// Builder: late-local-completion rate and extra delay.
    pub fn with_late_completions(mut self, permille: u16, extra_ns: u64) -> Self {
        self.late_permille = permille.min(1000);
        self.late_extra_ns = extra_ns;
        self
    }

    /// Builder: disable GDR on `node`.
    pub fn with_gdr_disabled(mut self, node: u32) -> Self {
        self.gdr_disabled_nodes |= 1u64 << (node % 64);
        self
    }

    /// Builder: per-op timeout.
    pub fn with_op_timeout_ns(mut self, ns: u64) -> Self {
        self.op_timeout_ns = ns;
        self
    }

    /// Builder: retry budget and backoff shape.
    pub fn with_retry(mut self, max_retries: u32, base_ns: u64, cap_ns: u64) -> Self {
        self.max_retries = max_retries;
        self.backoff_base_ns = base_ns.max(1);
        self.backoff_cap_ns = cap_ns.max(base_ns.max(1));
        self
    }

    /// Builder: append a link window (panics past capacity — plans are
    /// authored by hand or the env parser, both bounded).
    pub fn with_link_window(mut self, w: LinkWindow) -> Self {
        let n = self.n_link_windows as usize;
        assert!(n < MAX_LINK_WINDOWS, "too many link windows (max {MAX_LINK_WINDOWS})");
        self.link_windows[n] = w;
        self.n_link_windows += 1;
        self
    }

    /// Builder: append a proxy stall window.
    pub fn with_proxy_stall(mut self, s: ProxyStall) -> Self {
        let n = self.n_proxy_stalls as usize;
        assert!(n < MAX_PROXY_STALLS, "too many proxy stalls (max {MAX_PROXY_STALLS})");
        self.proxy_stalls[n] = s;
        self.n_proxy_stalls += 1;
        self
    }

    /// Builder: append a correlated burst window.
    pub fn with_burst_window(mut self, start_ns: u64, end_ns: u64) -> Self {
        assert!(start_ns < end_ns, "burst window must be a non-empty interval");
        let n = self.n_burst_windows as usize;
        assert!(n < MAX_BURST_WINDOWS, "too many burst windows (max {MAX_BURST_WINDOWS})");
        self.burst_windows[n] = BurstWindow { start_ns, end_ns };
        self.n_burst_windows += 1;
        self
    }

    /// Builder: append a fail-stop crash fault (`rejoin_ns == 0` means
    /// the PE never rejoins).
    pub fn with_crash(mut self, pe: u32, at_ns: u64, rejoin_ns: u64) -> Self {
        assert!(
            rejoin_ns == 0 || rejoin_ns > at_ns,
            "crash rejoin_ns must be 0 (never) or after at_ns"
        );
        let n = self.n_crashes as usize;
        assert!(n < MAX_CRASHES, "too many crash faults (max {MAX_CRASHES})");
        self.crashes[n] = CrashFault { pe, at_ns, rejoin_ns };
        self.n_crashes += 1;
        self
    }

    /// Configured fail-stop crash faults.
    pub fn crashes(&self) -> &[CrashFault] {
        &self.crashes[..self.n_crashes as usize]
    }

    /// The crash fault scheduled for `pe`, if any (at most one per PE
    /// is meaningful; the first wins).
    pub fn crash_of(&self, pe: u32) -> Option<CrashFault> {
        self.crashes().iter().copied().find(|c| c.pe == pe)
    }

    /// Is `pe` fail-stopped at virtual time `now_ns` (crashed, and not
    /// yet rejoined)?
    pub fn crashed(&self, pe: u32, now_ns: u64) -> bool {
        self.crash_of(pe).is_some_and(|c| {
            now_ns >= c.at_ns && (c.rejoin_ns == 0 || now_ns < c.rejoin_ns)
        })
    }

    /// Builder: append a two-sided split partition — every link between
    /// the PEs in `mask` and the PEs outside it is severed for
    /// `[start_ns, end_ns)`.
    pub fn with_partition_split(mut self, mask: u64, start_ns: u64, end_ns: u64) -> Self {
        assert!(mask != 0, "split partition mask must name at least one PE");
        assert!(start_ns < end_ns, "partition window must be a non-empty interval");
        let n = self.n_partitions as usize;
        assert!(n < MAX_PARTITIONS, "too many partition faults (max {MAX_PARTITIONS})");
        self.partitions[n] = PartitionFault {
            kind: PartitionKind::Split,
            mask,
            a: 0,
            b: 0,
            start_ns,
            end_ns,
        };
        self.n_partitions += 1;
        self
    }

    /// Builder: append an asymmetric cut — only the direct/GDR fabric
    /// from PE `a` toward PE `b` is severed for `[start_ns, end_ns)`.
    pub fn with_partition_cut(mut self, a: u32, b: u32, start_ns: u64, end_ns: u64) -> Self {
        assert!(a != b, "cut partition must name two distinct PEs");
        assert!(start_ns < end_ns, "partition window must be a non-empty interval");
        let n = self.n_partitions as usize;
        assert!(n < MAX_PARTITIONS, "too many partition faults (max {MAX_PARTITIONS})");
        self.partitions[n] = PartitionFault {
            kind: PartitionKind::Cut,
            mask: 0,
            a,
            b,
            start_ns,
            end_ns,
        };
        self.n_partitions += 1;
        self
    }

    /// Configured network-partition faults.
    pub fn partitions(&self) -> &[PartitionFault] {
        &self.partitions[..self.n_partitions as usize]
    }

    /// The split partition whose window covers `now_ns`, if any (at
    /// most one concurrent split is meaningful; the first wins).
    pub fn split_at(&self, now_ns: u64) -> Option<PartitionFault> {
        self.partitions().iter().copied().find(|p| {
            p.kind == PartitionKind::Split && now_ns >= p.start_ns && now_ns < p.end_ns
        })
    }

    /// Is the direct/GDR fabric from PE `a` toward PE `b` cut at
    /// virtual time `now_ns`? Cuts are ordered — `cut=0:1:...` severs
    /// only 0→1 posts.
    pub fn cut_active(&self, a: u32, b: u32, now_ns: u64) -> bool {
        self.partitions().iter().any(|p| {
            p.kind == PartitionKind::Cut
                && p.a == a
                && p.b == b
                && now_ns >= p.start_ns
                && now_ns < p.end_ns
        })
    }

    /// Builder: health-tracker shape (sliding window, failure
    /// threshold, half-open cooldown).
    pub fn with_health(mut self, window_ns: u64, threshold: u32, cooldown_ns: u64) -> Self {
        self.health_window_ns = window_ns.max(1);
        self.health_threshold = threshold.max(1);
        self.health_cooldown_ns = cooldown_ns.max(1);
        self
    }

    /// Configured link windows.
    pub fn link_windows(&self) -> &[LinkWindow] {
        &self.link_windows[..self.n_link_windows as usize]
    }

    /// Configured proxy stalls.
    pub fn proxy_stalls(&self) -> &[ProxyStall] {
        &self.proxy_stalls[..self.n_proxy_stalls as usize]
    }

    /// Configured correlated burst windows.
    pub fn burst_windows(&self) -> &[BurstWindow] {
        &self.burst_windows[..self.n_burst_windows as usize]
    }

    /// Is virtual time `now_ns` inside a correlated burst window?
    pub fn in_burst(&self, now_ns: u64) -> bool {
        self.burst_windows()
            .iter()
            .any(|w| now_ns >= w.start_ns && now_ns < w.end_ns)
    }

    /// Is GDR capability-disabled on `node`?
    pub fn gdr_disabled(&self, node: usize) -> bool {
        node < 64 && self.gdr_disabled_nodes & (1u64 << node) != 0
    }

    /// Does the `counter`-th post on `stream` (a poster id — keep the
    /// counter program-ordered per stream) fail with a transient CQE
    /// error?
    pub fn cqe_fails(&self, stream: u64, counter: u64) -> bool {
        self.cqe_permille > 0
            && mix(self.seed, stream.wrapping_add(0x0C9E), counter) % 1000
                < self.cqe_permille as u64
    }

    /// The transient error kind reported for the `counter`-th failed
    /// post on `stream` — alternates deterministically between the two
    /// CQE error classes the IB spec surfaces for transient faults.
    pub fn cqe_kind(&self, stream: u64, counter: u64) -> &'static str {
        if mix(self.seed, stream.wrapping_add(0x1D0B), counter) & 1 == 0 {
            "cqe-flush-err"
        } else {
            "cqe-retry-exceeded"
        }
    }

    /// Is the `counter`-th local completion on `stream` delivered late?
    pub fn completion_late(&self, stream: u64, counter: u64) -> bool {
        self.late_permille > 0
            && mix(self.seed, stream.wrapping_add(0x7A7E), counter) % 1000
                < self.late_permille as u64
    }

    /// Backoff before retry `attempt` (1-based) of `op`: exponential in
    /// the attempt, capped, plus deterministic jitter in `[0, base)`.
    pub fn backoff_ns(&self, op: u64, attempt: u32) -> u64 {
        let base = self.backoff_base_ns.max(1);
        let exp = ((base as u128) << attempt.min(64)).min(self.backoff_cap_ns as u128) as u64;
        let jitter = mix(self.seed, op.wrapping_add(0xB0FF), attempt as u64) % base;
        exp + jitter
    }

    /// Extra wakeup delay for a proxy wakeup scheduled on `node` at
    /// virtual time `now_ns` (0 when no stall window covers it).
    pub fn proxy_stall_extra_ns(&self, node: usize, now_ns: u64) -> u64 {
        let mut extra = 0u64;
        for s in self.proxy_stalls() {
            if s.node as usize == node && now_ns >= s.start_ns && now_ns < s.end_ns {
                extra = extra.max(s.extra_ns);
            }
        }
        extra
    }

    /// End of the stall window covering `node` at `now_ns`, together
    /// with its extra delay — the restart-aware view of a stall. `None`
    /// when no window covers the instant. Among overlapping windows the
    /// one with the largest extra wins (ties: the later end), matching
    /// [`FaultPlan::proxy_stall_extra_ns`].
    pub fn proxy_stall_window_ns(&self, node: usize, now_ns: u64) -> Option<(u64, u64)> {
        let mut best: Option<(u64, u64)> = None;
        for s in self.proxy_stalls() {
            if s.node as usize == node && now_ns >= s.start_ns && now_ns < s.end_ns {
                let cand = (s.end_ns, s.extra_ns);
                best = Some(match best {
                    Some((e, x)) if (x, e) >= (cand.1, cand.0) => (e, x),
                    _ => cand,
                });
            }
        }
        best
    }

    /// Parse the `GDR_SHMEM_FAULTS` environment variable. Unset or
    /// empty means no plan; a malformed token panics with the offending
    /// token named (a silent fallback would un-inject a chaos run).
    pub fn from_env() -> Option<FaultPlan> {
        let raw = std::env::var("GDR_SHMEM_FAULTS").ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        Some(Self::parse(&raw))
    }

    /// Parse a plan from whitespace-separated `key=value` tokens:
    ///
    /// ```text
    /// seed=42 cqe=100 cqe-detect=5000 retries=4 backoff=2000
    /// backoff-cap=64000 timeout=2000000 gdr-off=2 late=50
    /// late-extra=20000 link=hca:1:1000000:2000000:0
    /// stall=0:0:5000000:200000
    /// ```
    ///
    /// `gdr-off` is a node bitmask; `link` is
    /// `scope:index:start_ns:end_ns:bw_permille` (scope `hca`|`pcie`,
    /// index a number or `*`); `stall` is `node:start_ns:end_ns:extra_ns`;
    /// `burst` is `start_ns:end_ns` (a correlated failure burst);
    /// `health` is `window_ns:threshold:cooldown_ns` (circuit-breaker
    /// shape for health-driven protocol demotion); `crash` is
    /// `pe:at_ns[:rejoin_ns]` (fail-stop crash of a PE, optionally
    /// rejoining later; omitted or 0 rejoin = dead forever);
    /// `partition` is `split:<mask>:<start_ns>:<end_ns>` (two-sided
    /// split severing the masked PEs from the rest) or
    /// `cut:<a>:<b>:<start_ns>:<end_ns>` (asymmetric cut of the direct
    /// fabric from `a` toward `b` only).
    pub fn parse(s: &str) -> FaultPlan {
        let mut p = FaultPlan::default();
        for tok in s.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .unwrap_or_else(|| panic!("fault plan token without '=': {tok:?}"));
            // every malformed value names its key and the expected form
            // — a chaos repro with a typo must fail loudly and legibly
            let num = |what: &str, form: &str| -> u64 {
                v.parse::<u64>().unwrap_or_else(|_| {
                    panic!("fault plan key {k:?}: {what} must be a number (expected {form}), got {tok:?}")
                })
            };
            match k {
                "seed" => p.seed = num("seed", "seed=<u64>"),
                "cqe" => p.cqe_permille = num("cqe permille", "cqe=<0..=1000>").min(1000) as u16,
                "cqe-detect" => p.cqe_detect_ns = num("cqe-detect ns", "cqe-detect=<ns>"),
                "retries" => p.max_retries = num("retries", "retries=<count>") as u32,
                "backoff" => p.backoff_base_ns = num("backoff ns", "backoff=<ns>").max(1),
                "backoff-cap" => p.backoff_cap_ns = num("backoff-cap ns", "backoff-cap=<ns>"),
                "timeout" => p.op_timeout_ns = num("timeout ns", "timeout=<ns>"),
                "gdr-off" => p.gdr_disabled_nodes = num("gdr-off bitmask", "gdr-off=<node bitmask>"),
                "late" => p.late_permille = num("late permille", "late=<0..=1000>").min(1000) as u16,
                "late-extra" => p.late_extra_ns = num("late-extra ns", "late-extra=<ns>"),
                "link" => p = p.with_link_window(parse_link_window(v)),
                "stall" => p = p.with_proxy_stall(parse_proxy_stall(v)),
                "burst" => {
                    let (s, e) = parse_burst_window(v);
                    p = p.with_burst_window(s, e);
                }
                "health" => {
                    let (w, t, c) = parse_health(v);
                    p = p.with_health(w, t, c);
                }
                "crash" => {
                    let (pe, at, rejoin) = parse_crash(v);
                    p = p.with_crash(pe, at, rejoin);
                }
                "partition" => p = parse_partition(p, v),
                _ => panic!(
                    "unknown fault plan key {k:?} in {tok:?} (known keys: seed cqe \
                     cqe-detect retries backoff backoff-cap timeout gdr-off late \
                     late-extra link stall burst health crash partition)"
                ),
            }
        }
        p
    }
}

/// Emit the plan in the exact `GDR_SHMEM_FAULTS` grammar that
/// [`FaultPlan::parse`] reads: `seed=` always (replay identity), every
/// other scalar only when it differs from [`FaultPlan::default`], then
/// the window lists in declaration order. Because `parse` starts from
/// the default plan, `parse(&plan.to_string()) == plan` holds for any
/// plan built through the builders — the round trip the shrinker and
/// the committed repro files depend on.
impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = FaultPlan::default();
        write!(f, "seed={}", self.seed)?;
        if self.cqe_permille != d.cqe_permille {
            write!(f, " cqe={}", self.cqe_permille)?;
        }
        if self.cqe_detect_ns != d.cqe_detect_ns {
            write!(f, " cqe-detect={}", self.cqe_detect_ns)?;
        }
        if self.max_retries != d.max_retries {
            write!(f, " retries={}", self.max_retries)?;
        }
        if self.backoff_base_ns != d.backoff_base_ns {
            write!(f, " backoff={}", self.backoff_base_ns)?;
        }
        if self.backoff_cap_ns != d.backoff_cap_ns {
            write!(f, " backoff-cap={}", self.backoff_cap_ns)?;
        }
        if self.op_timeout_ns != d.op_timeout_ns {
            write!(f, " timeout={}", self.op_timeout_ns)?;
        }
        if self.gdr_disabled_nodes != d.gdr_disabled_nodes {
            write!(f, " gdr-off={}", self.gdr_disabled_nodes)?;
        }
        if self.late_permille != d.late_permille {
            write!(f, " late={}", self.late_permille)?;
        }
        if self.late_extra_ns != d.late_extra_ns {
            write!(f, " late-extra={}", self.late_extra_ns)?;
        }
        for w in self.link_windows() {
            let scope = match w.scope {
                LinkScope::HcaTx => "hca",
                LinkScope::GpuPcie => "pcie",
            };
            write!(f, " link={scope}:")?;
            if w.index == ALL {
                write!(f, "*")?;
            } else {
                write!(f, "{}", w.index)?;
            }
            write!(f, ":{}:{}:{}", w.start_ns, w.end_ns, w.bw_permille)?;
        }
        for s in self.proxy_stalls() {
            write!(f, " stall={}:{}:{}:{}", s.node, s.start_ns, s.end_ns, s.extra_ns)?;
        }
        for b in self.burst_windows() {
            write!(f, " burst={}:{}", b.start_ns, b.end_ns)?;
        }
        for c in self.crashes() {
            write!(f, " crash={}:{}", c.pe, c.at_ns)?;
            if c.rejoin_ns != 0 {
                write!(f, ":{}", c.rejoin_ns)?;
            }
        }
        for p in self.partitions() {
            match p.kind {
                PartitionKind::Split => {
                    write!(f, " partition=split:{}:{}:{}", p.mask, p.start_ns, p.end_ns)?
                }
                PartitionKind::Cut => {
                    write!(f, " partition=cut:{}:{}:{}:{}", p.a, p.b, p.start_ns, p.end_ns)?
                }
            }
        }
        if (self.health_window_ns, self.health_threshold, self.health_cooldown_ns)
            != (d.health_window_ns, d.health_threshold, d.health_cooldown_ns)
        {
            write!(
                f,
                " health={}:{}:{}",
                self.health_window_ns, self.health_threshold, self.health_cooldown_ns
            )?;
        }
        Ok(())
    }
}

/// Virtual-time horizon of generated plans: every window a generated
/// plan contains ends before this instant, so campaign workloads that
/// idle past it observe a fault-free fabric (the breaker-recovery
/// oracle depends on faults actually ending).
pub const GEN_HORIZON_NS: u64 = 2_000_000;

impl FaultPlan {
    /// Enumerate the `trial`-th randomized plan of a chaos campaign: a
    /// pure function of `(campaign_seed, trial)` (stateless [`mix`]
    /// draws, no RNG object), covering every fault dimension the plan
    /// grammar can express — CQE error rates, detection latency, retry
    /// and backoff budgets, per-op timeouts, GDR capability masks, late
    /// completions, link degradation/blackout windows, proxy stalls,
    /// correlated bursts, and the health-breaker shape. All windows end
    /// inside [`GEN_HORIZON_NS`] and every magnitude is bounded so a
    /// generated plan can delay and fail traffic but never wedge a
    /// workload past its quiesce deadline.
    pub fn generate(campaign_seed: u64, trial: u64) -> FaultPlan {
        // dimension draws live on their own salted streams so adding a
        // dimension never reshuffles the existing ones
        let d = |salt: u64| mix(campaign_seed, 0x4745_4E00 + salt, trial);
        let mut p = FaultPlan::default().with_seed(d(1));
        // transient CQE errors: off in ~2/7 of plans, else up to 400‰
        let cqe = [0u16, 0, 25, 60, 120, 250, 400][(d(2) % 7) as usize];
        if cqe > 0 {
            p = p.with_cqe_errors(cqe);
        }
        p.cqe_detect_ns = 1_000 + d(3) % 7_000;
        let retries = (d(4) % 6) as u32; // 0..=5
        let base = 500 + d(5) % 3_500;
        p = p.with_retry(retries, base, base * (4 + d(6) % 28));
        if d(7) % 10 < 3 {
            p.op_timeout_ns = 100_000 + d(8) % 1_900_000;
        }
        if d(9) % 4 == 0 {
            // capability fault on node 0, node 1, or both
            p.gdr_disabled_nodes = 1 + d(10) % 3;
        }
        if d(11) % 3 == 0 {
            p = p.with_late_completions((10 + d(12) % 190) as u16, 5_000 + d(13) % 45_000);
        }
        for i in 0..d(14) % 3 {
            let start = d(20 + i * 4) % (GEN_HORIZON_NS * 3 / 4);
            let scope = if d(21 + i * 4) & 1 == 0 {
                LinkScope::HcaTx
            } else {
                LinkScope::GpuPcie
            };
            let index = match d(22 + i * 4) % 3 {
                0 => 0,
                1 => 1,
                _ => ALL,
            };
            p = p.with_link_window(LinkWindow {
                scope,
                index,
                start_ns: start,
                end_ns: start + 50_000 + d(23 + i * 4) % 450_000,
                bw_permille: [0u16, 250, 500][(d(24 + i * 4) % 3) as usize],
            });
        }
        if d(40) % 3 == 0 {
            let start = d(41) % 1_000_000;
            p = p.with_proxy_stall(ProxyStall {
                node: (d(42) % 2) as u32,
                start_ns: start,
                end_ns: start + 100_000 + d(43) % 300_000,
                extra_ns: 50_000 + d(44) % 250_000,
            });
        }
        for i in 0..d(50) % 3 {
            let start = d(60 + i * 2) % (GEN_HORIZON_NS * 3 / 4);
            p = p.with_burst_window(start, start + 20_000 + d(61 + i * 2) % 130_000);
        }
        p.with_health(
            50_000 + d(70) % 250_000,
            2 + (d(71) % 4) as u32,
            100_000 + d(72) % 500_000,
        )
    }

    /// [`FaultPlan::generate`] plus the fail-stop crash dimension, for
    /// campaigns that opt into membership churn (`gdrchaos run
    /// --crash`). Kept out of the base generator so pre-crash campaign
    /// seeds keep their byte-identical trajectories; the crash draws
    /// ride fresh salts (80+) so every other dimension of the plan is
    /// exactly what `generate` would have produced. Roughly one trial
    /// in three crashes a PE, and a generated crash always rejoins
    /// before [`GEN_HORIZON_NS`] so the breaker-recovery oracle still
    /// observes a fully healed fabric at quiesce.
    pub fn generate_with_crashes(campaign_seed: u64, trial: u64) -> FaultPlan {
        let d = |salt: u64| mix(campaign_seed, 0x4745_4E00 + salt, trial);
        let mut p = Self::generate(campaign_seed, trial);
        if d(80) % 3 == 0 {
            let pe = (d(81) % 2) as u32;
            let at = 50_000 + d(82) % 1_000_000;
            let rejoin = at + 300_000 + d(83) % (GEN_HORIZON_NS - at - 300_000);
            p = p.with_crash(pe, at, rejoin);
        }
        p
    }

    /// [`FaultPlan::generate`] plus the network-partition dimension,
    /// for campaigns that opt into reachability churn (`gdrchaos run
    /// --partition`). Kept out of the base generator so pre-partition
    /// campaign seeds keep their byte-identical trajectories; the
    /// partition draws ride fresh salts (90+) so every other dimension
    /// is exactly what `generate` would have produced. Roughly one
    /// trial in three draws a partition — a two-sided split of PE 1
    /// (exercising quorum fencing and heal-merge) or an asymmetric cut
    /// between PEs 0 and 1 (exercising reachability-aware rerouting).
    /// Windows are long enough for the fence to land inside them
    /// (detection bound 150 µs) and end early enough that the heal
    /// merge completes before [`GEN_HORIZON_NS`], so the quiesced
    /// fabric every oracle inspects is fully healed.
    pub fn generate_with_partitions(campaign_seed: u64, trial: u64) -> FaultPlan {
        let d = |salt: u64| mix(campaign_seed, 0x4745_4E00 + salt, trial);
        let mut p = Self::generate(campaign_seed, trial);
        if d(90) % 3 == 0 {
            let start = 100_000 + d(91) % 600_000;
            let end = start + 200_000 + d(92) % 700_000;
            if d(93) & 1 == 0 {
                p = p.with_partition_split(0b10, start, end);
            } else {
                let a = (d(94) % 2) as u32;
                p = p.with_partition_cut(a, 1 - a, start, end);
            }
        }
        p
    }
}

fn parse_link_window(v: &str) -> LinkWindow {
    let parts: Vec<&str> = v.split(':').collect();
    assert!(
        parts.len() == 5,
        "link window must be scope:index:start_ns:end_ns:bw_permille, got {v:?}"
    );
    let scope = match parts[0] {
        "hca" => LinkScope::HcaTx,
        "pcie" => LinkScope::GpuPcie,
        other => panic!("link window scope must be hca|pcie, got {other:?}"),
    };
    let idx = |s: &str, what: &str| -> u32 {
        if s == "*" {
            ALL
        } else {
            s.parse().unwrap_or_else(|_| panic!("bad link window {what}: {s:?}"))
        }
    };
    let n = |s: &str, what: &str| -> u64 {
        s.parse().unwrap_or_else(|_| panic!("bad link window {what}: {s:?}"))
    };
    LinkWindow {
        scope,
        index: idx(parts[1], "index"),
        start_ns: n(parts[2], "start_ns"),
        end_ns: n(parts[3], "end_ns"),
        bw_permille: n(parts[4], "bw_permille").min(1000) as u16,
    }
}

fn parse_burst_window(v: &str) -> (u64, u64) {
    let parts: Vec<&str> = v.split(':').collect();
    assert!(parts.len() == 2, "burst window must be start_ns:end_ns, got {v:?}");
    let n = |s: &str, what: &str| -> u64 {
        s.parse().unwrap_or_else(|_| panic!("bad burst window {what}: {s:?}"))
    };
    (n(parts[0], "start_ns"), n(parts[1], "end_ns"))
}

fn parse_health(v: &str) -> (u64, u32, u64) {
    let parts: Vec<&str> = v.split(':').collect();
    assert!(
        parts.len() == 3,
        "health shape must be window_ns:threshold:cooldown_ns, got {v:?}"
    );
    let n = |s: &str, what: &str| -> u64 {
        s.parse().unwrap_or_else(|_| panic!("bad health shape {what}: {s:?}"))
    };
    (
        n(parts[0], "window_ns"),
        n(parts[1], "threshold") as u32,
        n(parts[2], "cooldown_ns"),
    )
}

fn parse_crash(v: &str) -> (u32, u64, u64) {
    let parts: Vec<&str> = v.split(':').collect();
    assert!(
        parts.len() == 2 || parts.len() == 3,
        "fault plan key \"crash\": expected crash=pe:at_ns[:rejoin_ns], got {v:?}"
    );
    let n = |s: &str, what: &str| -> u64 {
        s.parse().unwrap_or_else(|_| {
            panic!("fault plan key \"crash\": {what} must be a number (expected crash=pe:at_ns[:rejoin_ns]), got {v:?}")
        })
    };
    (
        n(parts[0], "pe") as u32,
        n(parts[1], "at_ns"),
        if parts.len() == 3 { n(parts[2], "rejoin_ns") } else { 0 },
    )
}

fn parse_partition(p: FaultPlan, v: &str) -> FaultPlan {
    const FORM: &str =
        "partition=split:<mask>:<start_ns>:<end_ns> | partition=cut:<a>:<b>:<start_ns>:<end_ns>";
    let parts: Vec<&str> = v.split(':').collect();
    let n = |s: &str, what: &str| -> u64 {
        s.parse().unwrap_or_else(|_| {
            panic!("fault plan key \"partition\": {what} must be a number (expected {FORM}), got {v:?}")
        })
    };
    match parts.first().copied() {
        Some("split") => {
            assert!(
                parts.len() == 4,
                "fault plan key \"partition\": expected {FORM}, got {v:?}"
            );
            p.with_partition_split(
                n(parts[1], "mask"),
                n(parts[2], "start_ns"),
                n(parts[3], "end_ns"),
            )
        }
        Some("cut") => {
            assert!(
                parts.len() == 5,
                "fault plan key \"partition\": expected {FORM}, got {v:?}"
            );
            p.with_partition_cut(
                n(parts[1], "a") as u32,
                n(parts[2], "b") as u32,
                n(parts[3], "start_ns"),
                n(parts[4], "end_ns"),
            )
        }
        _ => panic!("fault plan key \"partition\": shape must be split|cut (expected {FORM}), got {v:?}"),
    }
}

fn parse_proxy_stall(v: &str) -> ProxyStall {
    let parts: Vec<&str> = v.split(':').collect();
    assert!(
        parts.len() == 4,
        "proxy stall must be node:start_ns:end_ns:extra_ns, got {v:?}"
    );
    let n = |s: &str, what: &str| -> u64 {
        s.parse().unwrap_or_else(|_| panic!("bad proxy stall {what}: {s:?}"))
    };
    ProxyStall {
        node: n(parts[0], "node") as u32,
        start_ns: n(parts[1], "start_ns"),
        end_ns: n(parts[2], "end_ns"),
        extra_ns: n(parts[3], "extra_ns"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive() {
        let p = FaultPlan::default();
        assert!(!p.active());
        assert!(!p.cqe_fails(0, 0));
        assert!(!p.completion_late(0, 0));
        assert!(!p.gdr_disabled(0));
        assert_eq!(p.proxy_stall_extra_ns(0, 123), 0);
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::default().with_seed(7).with_cqe_errors(500);
        let b = FaultPlan::default().with_seed(7).with_cqe_errors(500);
        let c = FaultPlan::default().with_seed(8).with_cqe_errors(500);
        let fa: Vec<bool> = (0..64).map(|i| a.cqe_fails(3, i)).collect();
        let fb: Vec<bool> = (0..64).map(|i| b.cqe_fails(3, i)).collect();
        let fc: Vec<bool> = (0..64).map(|i| c.cqe_fails(3, i)).collect();
        assert_eq!(fa, fb, "same seed must replay identically");
        assert_ne!(fa, fc, "different seeds must diverge");
    }

    #[test]
    fn cqe_rate_is_roughly_honored() {
        let p = FaultPlan::default().with_seed(42).with_cqe_errors(100);
        let n = 10_000u64;
        let hits = (0..n).filter(|&i| p.cqe_fails(1, i)).count();
        let rate = hits as f64 / n as f64;
        assert!((0.07..0.13).contains(&rate), "10% permille drew {rate}");
    }

    #[test]
    fn backoff_grows_and_caps_with_jitter_below_base() {
        let p = FaultPlan::default().with_retry(8, 1_000, 32_000);
        let b1 = p.backoff_ns(9, 1);
        let b3 = p.backoff_ns(9, 3);
        let b20 = p.backoff_ns(9, 20);
        assert!((2_000..3_000).contains(&b1), "{b1}");
        assert!((8_000..9_000).contains(&b3), "{b3}");
        assert!(b20 <= 33_000, "cap + jitter bound: {b20}");
        assert_eq!(b1, p.backoff_ns(9, 1), "backoff must be deterministic");
        assert_ne!(
            p.backoff_ns(9, 1) - 2_000,
            p.backoff_ns(10, 1) - 2_000,
            "jitter should vary by op (collision vanishingly unlikely)"
        );
    }

    #[test]
    fn gdr_disable_bitmask() {
        let p = FaultPlan::default().with_gdr_disabled(1).with_gdr_disabled(3);
        assert!(!p.gdr_disabled(0));
        assert!(p.gdr_disabled(1));
        assert!(!p.gdr_disabled(2));
        assert!(p.gdr_disabled(3));
        assert!(p.active());
    }

    #[test]
    fn proxy_stall_windows_cover_only_their_interval() {
        let p = FaultPlan::default().with_proxy_stall(ProxyStall {
            node: 1,
            start_ns: 1_000,
            end_ns: 2_000,
            extra_ns: 500_000,
        });
        assert_eq!(p.proxy_stall_extra_ns(1, 999), 0);
        assert_eq!(p.proxy_stall_extra_ns(1, 1_000), 500_000);
        assert_eq!(p.proxy_stall_extra_ns(1, 1_999), 500_000);
        assert_eq!(p.proxy_stall_extra_ns(1, 2_000), 0);
        assert_eq!(p.proxy_stall_extra_ns(0, 1_500), 0, "wrong node");
    }

    #[test]
    fn stall_window_lookup_names_the_covering_window() {
        let p = FaultPlan::default()
            .with_proxy_stall(ProxyStall { node: 1, start_ns: 1_000, end_ns: 2_000, extra_ns: 500_000 })
            .with_proxy_stall(ProxyStall { node: 1, start_ns: 1_500, end_ns: 5_000, extra_ns: 900_000 });
        assert_eq!(p.proxy_stall_window_ns(1, 999), None);
        assert_eq!(p.proxy_stall_window_ns(1, 1_200), Some((2_000, 500_000)));
        // overlapping windows: the larger extra wins, same as the
        // extra_ns lookup
        assert_eq!(p.proxy_stall_window_ns(1, 1_700), Some((5_000, 900_000)));
        assert_eq!(
            p.proxy_stall_extra_ns(1, 1_700),
            p.proxy_stall_window_ns(1, 1_700)
                .expect("a stall window on node 1 must cover 1700ns")
                .1
        );
        assert_eq!(p.proxy_stall_window_ns(0, 1_200), None, "wrong node");
        assert_eq!(p.proxy_stall_window_ns(1, 5_000), None);
    }

    #[test]
    fn env_grammar_round_trips() {
        let p = FaultPlan::parse(
            "seed=42 cqe=100 cqe-detect=7000 retries=6 backoff=1500 \
             backoff-cap=48000 timeout=2000000 gdr-off=2 late=50 late-extra=9000 \
             link=hca:1:1000000:2000000:0 link=pcie:*:0:500000:250 \
             stall=0:0:5000000:200000",
        );
        assert_eq!(p.seed, 42);
        assert_eq!(p.cqe_permille, 100);
        assert_eq!(p.cqe_detect_ns, 7_000);
        assert_eq!(p.max_retries, 6);
        assert_eq!(p.backoff_base_ns, 1_500);
        assert_eq!(p.backoff_cap_ns, 48_000);
        assert_eq!(p.op_timeout_ns, 2_000_000);
        assert!(p.gdr_disabled(1) && !p.gdr_disabled(0));
        assert_eq!(p.late_permille, 50);
        assert_eq!(p.late_extra_ns, 9_000);
        assert_eq!(p.link_windows().len(), 2);
        assert_eq!(p.link_windows()[0].scope, LinkScope::HcaTx);
        assert_eq!(p.link_windows()[0].index, 1);
        assert_eq!(p.link_windows()[0].bw_permille, 0);
        assert_eq!(p.link_windows()[1].scope, LinkScope::GpuPcie);
        assert_eq!(p.link_windows()[1].index, ALL);
        assert_eq!(p.link_windows()[1].bw_permille, 250);
        assert_eq!(p.proxy_stalls().len(), 1);
        assert!(p.active());
    }

    #[test]
    #[should_panic(expected = "unknown fault plan key")]
    fn unknown_keys_are_rejected_loudly() {
        FaultPlan::parse("sede=42");
    }

    #[test]
    fn burst_windows_cover_only_their_interval_and_arm_draws() {
        let p = FaultPlan::default().with_burst_window(1_000, 2_000);
        assert!(p.active(), "a burst window alone makes the plan active");
        assert!(p.cqe_armed(), "a burst window alone arms CQE draws");
        assert!(!p.in_burst(999));
        assert!(p.in_burst(1_000));
        assert!(p.in_burst(1_999));
        assert!(!p.in_burst(2_000));
        // permille draws stay independent of the window predicate
        assert!(!p.cqe_fails(0, 0), "cqe_permille is still 0");
        let clean = FaultPlan::default();
        assert!(!clean.cqe_armed() && !clean.in_burst(1_500));
    }

    #[test]
    fn burst_grammar_and_health_grammar_round_trip() {
        let p = FaultPlan::parse("burst=50000:90000 burst=200000:210000 health=100000:2:300000");
        assert_eq!(p.burst_windows().len(), 2);
        assert_eq!(p.burst_windows()[0], BurstWindow { start_ns: 50_000, end_ns: 90_000 });
        assert_eq!(p.burst_windows()[1], BurstWindow { start_ns: 200_000, end_ns: 210_000 });
        assert!(p.in_burst(60_000) && !p.in_burst(100_000) && p.in_burst(205_000));
        assert_eq!(p.health_window_ns, 100_000);
        assert_eq!(p.health_threshold, 2);
        assert_eq!(p.health_cooldown_ns, 300_000);
        assert!(p.active());
    }

    #[test]
    #[should_panic(expected = "non-empty interval")]
    fn empty_burst_windows_are_rejected() {
        let _ = FaultPlan::default().with_burst_window(5, 5);
    }

    #[test]
    fn sync_stream_is_disjoint_from_poster_streams() {
        // the sync salt lives above any 32-bit poster id, so a sync
        // draw can never collide with (and perturb) an RMA post stream
        for poster in [0u64, 1, u32::MAX as u64] {
            assert_ne!(poster | SYNC_STREAM, poster);
        }
        let p = FaultPlan::default().with_seed(9).with_cqe_errors(500);
        let rma: Vec<bool> = (0..64).map(|i| p.cqe_fails(3, i)).collect();
        let sync: Vec<bool> = (0..64).map(|i| p.cqe_fails(3 | SYNC_STREAM, i)).collect();
        assert_ne!(rma, sync, "sync draws ride their own stream");
    }

    #[test]
    fn mix_avalanche_smoke() {
        // neighbouring counters must not correlate
        let xs: Vec<u64> = (0..32).map(|i| mix(1, 2, i)).collect();
        for w in xs.windows(2) {
            assert_ne!(w[0], w[1]);
            assert!((w[0] ^ w[1]).count_ones() > 8, "weak diffusion");
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        // property over the campaign generator's whole plan space: the
        // shrinker serializes candidates through this round trip, so a
        // single lossy field would silently change what gets replayed
        for trial in 0..512 {
            let p = FaultPlan::generate(0xC0FFEE, trial);
            let s = p.to_string();
            assert_eq!(FaultPlan::parse(&s), p, "lossy grammar for {s:?}");
        }
        // defaults collapse to the bare seed token
        assert_eq!(FaultPlan::default().to_string(), "seed=1");
        assert_eq!(FaultPlan::parse("seed=1"), FaultPlan::default());
        // hand-built corners: wildcard link index, every window kind
        let p = FaultPlan::default()
            .with_seed(99)
            .with_cqe_errors(333)
            .with_late_completions(50, 7_000)
            .with_gdr_disabled(0)
            .with_gdr_disabled(2)
            .with_op_timeout_ns(1_500_000)
            .with_retry(0, 900, 900)
            .with_link_window(LinkWindow {
                scope: LinkScope::GpuPcie,
                index: ALL,
                start_ns: 10,
                end_ns: 20,
                bw_permille: 0,
            })
            .with_proxy_stall(ProxyStall { node: 1, start_ns: 5, end_ns: 9, extra_ns: 4 })
            .with_burst_window(100, 200)
            .with_partition_split(0b110, 1_000, 2_000)
            .with_partition_cut(1, 0, 3_000, 4_000)
            .with_health(1, 1, 1);
        assert_eq!(FaultPlan::parse(&p.to_string()), p);
        // the partition campaign generator's plan space round-trips too
        for trial in 0..512 {
            let p = FaultPlan::generate_with_partitions(0xC0FFEE, trial);
            let s = p.to_string();
            assert_eq!(FaultPlan::parse(&s), p, "lossy grammar for {s:?}");
        }
    }

    #[test]
    fn generate_is_pure_and_trial_sensitive() {
        for trial in [0u64, 1, 17, 4096] {
            assert_eq!(
                FaultPlan::generate(7, trial),
                FaultPlan::generate(7, trial),
                "generate must be a pure function of (seed, trial)"
            );
        }
        let distinct: std::collections::HashSet<String> =
            (0..64).map(|t| FaultPlan::generate(7, t).to_string()).collect();
        assert!(distinct.len() > 48, "trials barely vary: {}", distinct.len());
        assert_ne!(FaultPlan::generate(7, 0), FaultPlan::generate(8, 0));
        // every generated window must close before the campaign horizon
        for trial in 0..256 {
            let p = FaultPlan::generate(3, trial);
            for w in p.link_windows() {
                assert!(w.end_ns <= GEN_HORIZON_NS);
            }
            for s in p.proxy_stalls() {
                assert!(s.end_ns <= GEN_HORIZON_NS);
            }
            for b in p.burst_windows() {
                assert!(b.end_ns <= GEN_HORIZON_NS);
            }
        }
    }

    #[test]
    fn crash_grammar_round_trips_and_predicates_cover_lifetime() {
        let p = FaultPlan::parse("crash=1:100000:600000 crash=0:50000");
        assert_eq!(p.crashes().len(), 2);
        assert_eq!(
            p.crash_of(1),
            Some(CrashFault { pe: 1, at_ns: 100_000, rejoin_ns: 600_000 })
        );
        assert!(p.active(), "a crash alone makes the plan active");
        // pe 1 is dead exactly in [at, rejoin)
        assert!(!p.crashed(1, 99_999));
        assert!(p.crashed(1, 100_000));
        assert!(p.crashed(1, 599_999));
        assert!(!p.crashed(1, 600_000));
        // pe 0 never rejoins
        assert!(p.crashed(0, u64::MAX - 1));
        assert!(!p.crashed(2, 1_000_000), "unscheduled PE never crashes");
        assert_eq!(FaultPlan::parse(&p.to_string()), p);
        // rejoin-less display omits the third field
        assert_eq!(
            FaultPlan::default().with_crash(0, 5, 0).to_string(),
            "seed=1 crash=0:5"
        );
    }

    #[test]
    #[should_panic(expected = "rejoin_ns must be 0 (never) or after at_ns")]
    fn crash_rejoin_before_death_is_rejected() {
        let _ = FaultPlan::default().with_crash(0, 100, 50);
    }

    #[test]
    fn generate_with_crashes_is_pure_and_leaves_base_dimensions_alone() {
        let mut saw_crash = false;
        for trial in 0..128 {
            let base = FaultPlan::generate(7, trial);
            let c = FaultPlan::generate_with_crashes(7, trial);
            assert_eq!(c, FaultPlan::generate_with_crashes(7, trial), "pure");
            // stripping the crash dimension recovers the base plan exactly
            let mut stripped = c;
            stripped.crashes = [CrashFault::default(); MAX_CRASHES];
            stripped.n_crashes = 0;
            assert_eq!(stripped, base, "crash draws must not reshuffle other dimensions");
            for cr in c.crashes() {
                saw_crash = true;
                assert!(cr.pe < 2);
                assert!(cr.rejoin_ns > cr.at_ns, "generated crashes always rejoin");
                assert!(cr.rejoin_ns <= GEN_HORIZON_NS);
            }
        }
        assert!(saw_crash, "128 trials must draw at least one crash");
    }

    #[test]
    #[should_panic(expected = "expected crash=pe:at_ns[:rejoin_ns]")]
    fn malformed_crash_names_key_and_form() {
        FaultPlan::parse("crash=1:oops");
    }

    #[test]
    fn partition_grammar_round_trips_and_predicates_cover_window() {
        let p = FaultPlan::parse("partition=split:2:100000:600000 partition=cut:0:1:50000:200000");
        assert_eq!(p.partitions().len(), 2);
        assert!(p.active(), "a partition alone makes the plan active");
        // the split covers exactly [start, end)
        assert_eq!(p.split_at(99_999), None);
        assert_eq!(
            p.split_at(100_000)
                .expect("split window must cover its start instant")
                .mask,
            0b10
        );
        assert!(p.split_at(599_999).is_some());
        assert_eq!(p.split_at(600_000), None);
        // the cut is ordered: 0→1 only, inside its window only
        assert!(!p.cut_active(0, 1, 49_999));
        assert!(p.cut_active(0, 1, 50_000));
        assert!(p.cut_active(0, 1, 199_999));
        assert!(!p.cut_active(0, 1, 200_000));
        assert!(!p.cut_active(1, 0, 100_000), "cuts are ordered");
        assert_eq!(FaultPlan::parse(&p.to_string()), p);
        assert_eq!(
            FaultPlan::default().with_partition_split(1, 5, 9).to_string(),
            "seed=1 partition=split:1:5:9"
        );
        assert_eq!(
            FaultPlan::default().with_partition_cut(1, 0, 5, 9).to_string(),
            "seed=1 partition=cut:1:0:5:9"
        );
    }

    #[test]
    #[should_panic(expected = "shape must be split|cut")]
    fn malformed_partition_names_key_and_form() {
        FaultPlan::parse("partition=half:1:2:3");
    }

    #[test]
    #[should_panic(expected = "non-empty interval")]
    fn empty_partition_windows_are_rejected() {
        let _ = FaultPlan::default().with_partition_split(1, 7, 7);
    }

    #[test]
    fn generate_with_partitions_is_pure_and_leaves_base_dimensions_alone() {
        let (mut saw_split, mut saw_cut) = (false, false);
        for trial in 0..128 {
            let base = FaultPlan::generate(7, trial);
            let pp = FaultPlan::generate_with_partitions(7, trial);
            assert_eq!(pp, FaultPlan::generate_with_partitions(7, trial), "pure");
            // stripping the partition dimension recovers the base plan exactly
            let mut stripped = pp;
            stripped.partitions = [PartitionFault::default(); MAX_PARTITIONS];
            stripped.n_partitions = 0;
            assert_eq!(stripped, base, "partition draws must not reshuffle other dimensions");
            assert_eq!(pp.n_crashes, 0, "partition campaigns do not layer crash churn");
            for f in pp.partitions() {
                match f.kind {
                    PartitionKind::Split => {
                        saw_split = true;
                        assert_eq!(f.mask, 0b10, "generated splits isolate PE 1");
                    }
                    PartitionKind::Cut => {
                        saw_cut = true;
                        assert!(f.a < 2 && f.b < 2 && f.a != f.b);
                    }
                }
                // room for the fence inside the window and the heal
                // merge before the horizon (membership bounds)
                assert!(f.end_ns > f.start_ns + 150_000);
                assert!(f.end_ns + 50_000 <= GEN_HORIZON_NS);
            }
        }
        assert!(saw_split, "128 trials must draw at least one split");
        assert!(saw_cut, "128 trials must draw at least one cut");
    }

    #[test]
    fn draws_are_pure_under_any_call_order() {
        // satellite: identical (seed, stream, counter) triples must
        // yield identical draws regardless of evaluation order or
        // interleaving across posters — the plan holds no hidden state
        let p = FaultPlan::default()
            .with_seed(1234)
            .with_cqe_errors(400)
            .with_late_completions(300, 10_000)
            .with_retry(6, 1_000, 32_000)
            .with_partition_split(0b10, 400, 900)
            .with_partition_cut(0, 1, 1_200, 2_400);
        let streams = [0u64, 1, 7, 3 | SYNC_STREAM];
        let mut forward = Vec::new();
        for &s in &streams {
            for c in 0..32u64 {
                forward.push((
                    p.cqe_fails(s, c),
                    p.completion_late(s, c),
                    p.backoff_ns(c, (c % 6) as u32),
                    p.split_at(c * 100).is_some(),
                    p.cut_active(0, 1, c * 100),
                ));
            }
        }
        // reversed order, interleaved across streams, with unrelated
        // draws injected between every probe
        let mut backward = vec![None; forward.len()];
        for c in (0..32u64).rev() {
            for (si, &s) in streams.iter().enumerate().rev() {
                let _ = p.cqe_fails(s ^ 0xDEAD, c + 1000); // noise draw
                backward[si * 32 + c as usize] = Some((
                    p.cqe_fails(s, c),
                    p.completion_late(s, c),
                    p.backoff_ns(c, (c % 6) as u32),
                    p.split_at(c * 100).is_some(),
                    p.cut_active(0, 1, c * 100),
                ));
                let _ = p.completion_late(s.wrapping_add(9), c); // noise
                let _ = p.cut_active(1, 0, c * 100); // noise probe
            }
        }
        let backward: Vec<_> = backward
            .into_iter()
            .map(|x| x.expect("every (stream, counter) slot was probed in the reversed pass"))
            .collect();
        assert_eq!(forward, backward, "draws must be order-independent");
    }
}
