//! Threshold auto-tuning: derive the hybrid-protocol switch points by
//! probing the machine, the way MVAPICH2-X ships pre-tuned tables per
//! platform. Sweeps each protocol pair over message sizes on a probe
//! pair of PEs and places the threshold at the measured crossover.

use crate::latency::put_latency;
use crate::Config;
use shmem_gdr::{Design, RuntimeConfig};

/// Result of a tuning pass.
#[derive(Clone, Copy, Debug)]
pub struct Tuned {
    pub loopback_put_limit: u64,
    pub loopback_dd_limit: u64,
    pub gdr_put_limit: u64,
    pub config: RuntimeConfig,
}

/// Find the largest probed size where protocol A (forced by `lo_cfg`)
/// still beats protocol B (forced by `hi_cfg`).
fn crossover(
    lo_cfg: RuntimeConfig,
    hi_cfg: RuntimeConfig,
    intra: bool,
    config: Config,
    probe_sizes: &[u64],
) -> u64 {
    let mut last_winner = 0;
    for &b in probe_sizes {
        let lo = put_latency(Design::EnhancedGdr, lo_cfg, intra, config, b).usec;
        let hi = put_latency(Design::EnhancedGdr, hi_cfg, intra, config, b).usec;
        if lo <= hi {
            last_winner = b;
        } else {
            break;
        }
    }
    last_winner
}

/// Probe the machine and return thresholds placed at the measured
/// crossovers (rounded up to the next power of two).
pub fn autotune(base: RuntimeConfig) -> Tuned {
    let probe: Vec<u64> = (0..12).map(|i| 256u64 << i).collect(); // 256 B – 512 KiB
    let probe_big: Vec<u64> = (0..15).map(|i| 256u64 << i).collect(); // … – 4 MiB

    // loopback-vs-IPC for H-D: force loopback always vs never
    let mut always = base;
    always.loopback_put_limit = u64::MAX;
    always.loopback_dd_limit = u64::MAX;
    let mut never = base;
    never.loopback_put_limit = 0;
    never.loopback_dd_limit = 0;
    let hd = crossover(always, never, true, Config::HD, &probe);
    let dd = crossover(always, never, true, Config::DD, &probe);

    // direct-GDR vs pipeline for inter-node D-D puts
    let mut direct = base;
    direct.gdr_put_limit = u64::MAX;
    let mut pipe = base;
    pipe.gdr_put_limit = 0;
    let gdr = crossover(direct, pipe, false, Config::DD, &probe_big);

    let round_pow2 = |v: u64| v.max(256).next_power_of_two();
    let mut config = base;
    config.loopback_put_limit = round_pow2(hd);
    config.loopback_dd_limit = round_pow2(dd);
    config.gdr_put_limit = round_pow2(gdr);
    Tuned {
        loopback_put_limit: config.loopback_put_limit,
        loopback_dd_limit: config.loopback_dd_limit,
        gdr_put_limit: config.gdr_put_limit,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autotuned_thresholds_land_near_the_shipped_defaults() {
        let base = RuntimeConfig::tuned(Design::EnhancedGdr);
        let t = autotune(base);
        // within a factor of 4 of the hand-tuned values
        let near = |got: u64, want: u64| got >= want / 4 && got <= want * 4;
        assert!(
            near(t.loopback_put_limit, base.loopback_put_limit),
            "H-D loopback: tuned {} vs default {}",
            t.loopback_put_limit,
            base.loopback_put_limit
        );
        assert!(
            near(t.loopback_dd_limit, base.loopback_dd_limit),
            "D-D loopback: tuned {} vs default {}",
            t.loopback_dd_limit,
            base.loopback_dd_limit
        );
        // The direct/pipeline crossover in this bandwidth-only model
        // sits higher than MVAPICH's conservative hardware default;
        // what matters is that the tuned config is never slower than
        // the shipped one at any probe size.
        use crate::latency::put_latency as pl;
        for b in [8u64 << 10, 128 << 10, 1 << 20, 4 << 20] {
            let tuned = pl(Design::EnhancedGdr, t.config, false, Config::DD, b).usec;
            let dflt = pl(Design::EnhancedGdr, base, false, Config::DD, b).usec;
            assert!(
                tuned <= dflt * 1.02,
                "tuned config slower at {b}B: {tuned:.1} vs {dflt:.1}"
            );
        }
        // D-D threshold must be the least (paper §III-B)
        assert!(t.loopback_dd_limit <= t.loopback_put_limit);
    }

    #[test]
    fn autotuned_config_still_passes_correctness() {
        use pcie_sim::ClusterSpec;
        use shmem_gdr::{Domain, ShmemMachine};
        let t = autotune(RuntimeConfig::tuned(Design::EnhancedGdr));
        let m = ShmemMachine::build(ClusterSpec::internode_pair(), t.config);
        m.run(|pe| {
            let d = pe.shmalloc(1 << 20, Domain::Gpu);
            if pe.my_pe() == 0 {
                let s = pe.malloc_dev(1 << 20);
                pe.write_raw(s, &vec![0x6B; 1 << 20]);
                pe.putmem(d, s, 1 << 20, 1);
                pe.quiet();
            }
            pe.barrier_all();
            if pe.my_pe() == 1 {
                assert!(pe
                    .read_raw(pe.addr_of(d, 1), 1 << 20)
                    .iter()
                    .all(|&b| b == 0x6B));
            }
        });
    }
}
