//! Atomic-operation and synchronization latency benchmarks
//! (`osu_oshm_atomics` / barrier companions).

use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine};

/// Average fetch-add latency on a remote symmetric counter (us).
pub fn fetch_add_latency(design: Design, intra: bool, gpu_domain: bool) -> f64 {
    let spec = if intra {
        ClusterSpec::intranode_pair()
    } else {
        ClusterSpec::internode_pair()
    };
    let m = ShmemMachine::build(spec, RuntimeConfig::tuned(design));
    let domain = if gpu_domain { Domain::Gpu } else { Domain::Host };
    let out = m.run(move |pe| {
        let ctr = pe.shmalloc(8, domain);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            for _ in 0..5 {
                pe.atomic_fetch_add(ctr, 1, 1);
            }
            let iters = 50;
            let t0 = pe.now();
            for _ in 0..iters {
                pe.atomic_fetch_add(ctr, 1, 1);
            }
            let dt = (pe.now() - t0).as_us_f64() / iters as f64;
            pe.barrier_all();
            dt
        } else {
            pe.barrier_all();
            0.0
        }
    });
    crate::obs_finish(&m, &format!("fetch_add_{}", if gpu_domain { "gpu" } else { "host" }));
    out[0]
}

/// Average compare-swap latency (us).
pub fn cswap_latency(design: Design, intra: bool, gpu_domain: bool) -> f64 {
    let spec = if intra {
        ClusterSpec::intranode_pair()
    } else {
        ClusterSpec::internode_pair()
    };
    let m = ShmemMachine::build(spec, RuntimeConfig::tuned(design));
    let domain = if gpu_domain { Domain::Gpu } else { Domain::Host };
    let out = m.run(move |pe| {
        let cell = pe.shmalloc(8, domain);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let iters = 50;
            let t0 = pe.now();
            for i in 0..iters {
                pe.atomic_compare_swap(cell, i, i + 1, 1);
            }
            let dt = (pe.now() - t0).as_us_f64() / iters as f64;
            pe.barrier_all();
            dt
        } else {
            pe.barrier_all();
            0.0
        }
    });
    crate::obs_finish(&m, &format!("cswap_{}", if gpu_domain { "gpu" } else { "host" }));
    out[0]
}

/// Average `shmem_barrier_all` latency at a given job size (us).
pub fn barrier_latency(nodes: usize, ppn: usize) -> f64 {
    let m = ShmemMachine::build(
        ClusterSpec::wilkes(nodes, ppn),
        RuntimeConfig::tuned(Design::EnhancedGdr),
    );
    let out = m.run(|pe| {
        for _ in 0..3 {
            pe.barrier_all();
        }
        let iters = 20;
        let t0 = pe.now();
        for _ in 0..iters {
            pe.barrier_all();
        }
        (pe.now() - t0).as_us_f64() / iters as f64
    });
    crate::obs_finish(&m, &format!("barrier_{nodes}x{ppn}"));
    out.iter().cloned().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_atomics_cost_more_than_host_but_same_magnitude() {
        let host = fetch_add_latency(Design::EnhancedGdr, false, false);
        let gpu = fetch_add_latency(Design::EnhancedGdr, false, true);
        assert!(gpu > host, "GDR atomic {gpu} should exceed host {host}");
        assert!(gpu < host * 2.0, "but stay the same magnitude ({gpu} vs {host})");
    }

    #[test]
    fn loopback_atomics_beat_internode() {
        let near = fetch_add_latency(Design::EnhancedGdr, true, true);
        let far = fetch_add_latency(Design::EnhancedGdr, false, true);
        assert!(near < far, "{near} vs {far}");
    }

    #[test]
    fn cswap_and_fadd_cost_the_same() {
        let f = fetch_add_latency(Design::EnhancedGdr, false, false);
        let c = cswap_latency(Design::EnhancedGdr, false, false);
        assert!((f - c).abs() < 0.2, "{f} vs {c}");
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let b2 = barrier_latency(2, 1);
        let b16 = barrier_latency(8, 2);
        // 16 PEs = 4 rounds vs 1 round: ~4x, far below the 8x of linear
        assert!(b16 > b2 * 2.0, "{b2} -> {b16}");
        assert!(b16 < b2 * 8.0, "{b2} -> {b16}");
    }
}
