//! Message-size sweeps matching the OMB conventions and the paper's
//! small/large figure panels.

/// Powers of two from `lo` to `hi` inclusive.
pub fn pow2_sizes(lo: u64, hi: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = lo;
    while s <= hi {
        v.push(s);
        s *= 2;
    }
    v
}

/// The "small messages" panel of the paper's figures: 4 B – 8 KiB.
pub fn small_sizes() -> Vec<u64> {
    pow2_sizes(4, 8 << 10)
}

/// The "large messages" panel: 16 KiB – 4 MiB.
pub fn large_sizes() -> Vec<u64> {
    pow2_sizes(16 << 10, 4 << 20)
}

/// Full OMB sweep.
pub fn standard_sizes() -> Vec<u64> {
    pow2_sizes(4, 4 << 20)
}

/// OMB-style iteration counts: more iterations for small messages.
pub fn iters_for(bytes: u64) -> u64 {
    if bytes <= 8 << 10 {
        50
    } else if bytes <= 512 << 10 {
        20
    } else {
        10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_cover_expected_ranges() {
        let s = small_sizes();
        assert_eq!(*s.first().unwrap(), 4);
        assert_eq!(*s.last().unwrap(), 8 << 10);
        let l = large_sizes();
        assert_eq!(*l.first().unwrap(), 16 << 10);
        assert_eq!(*l.last().unwrap(), 4 << 20);
        let all = standard_sizes();
        assert_eq!(all.len(), s.len() + l.len());
        assert!(all.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn iteration_schedule() {
        assert_eq!(iters_for(8), 50);
        assert_eq!(iters_for(64 << 10), 20);
        assert_eq!(iters_for(4 << 20), 10);
    }
}
