//! # omb — OMB-GPU-style micro-benchmarks for the OpenSHMEM runtime
//!
//! Reimplementation of the measurement loops of the OSU Micro-Benchmark
//! suite with GPU support (OMB-GPU, EuroMPI'12), which the paper uses
//! for §V-B: point-to-point put/get latency per buffer configuration,
//! bandwidth, message rate, and the overlap/one-sidedness benchmark of
//! Fig. 10.
//!
//! Every benchmark builds a fresh two-PE machine, warms the path up
//! (registration caches, IPC mappings), then measures `iters`
//! iterations of the operation in virtual time.

pub mod atomics;
pub mod autotune;
pub mod bandwidth;
pub mod latency;
pub mod overlap;
pub mod sweep;

pub use atomics::{barrier_latency, cswap_latency, fetch_add_latency};
pub use autotune::{autotune, Tuned};
pub use bandwidth::{message_rate, put_bandwidth, BwPoint};
pub use latency::{get_latency, put_latency, LatencyPoint};
pub use overlap::{overlap_put, OverlapPoint};
pub use sweep::{large_sizes, small_sizes, standard_sizes};

use shmem_gdr::Domain;
use std::fmt;

/// Driver-side observability hook, called by every benchmark after its
/// machine finishes. When span recording is on (`GDR_SHMEM_OBS=spans`)
/// and `GDR_SHMEM_TRACE_DIR` names a directory, writes one Chrome trace
/// per benchmark as `<dir>/<label>.json`; with `GDR_SHMEM_OBS_SUMMARY`
/// also set, prints the text summary to stderr.
pub fn obs_finish(m: &shmem_gdr::ShmemMachine, label: &str) {
    if m.obs().spans_on() {
        if let Some(dir) = std::env::var_os("GDR_SHMEM_TRACE_DIR") {
            let dir = std::path::Path::new(&dir);
            // a fresh trace directory is the common case: create it
            // rather than failing every write
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("obs: failed to create {}: {e}", dir.display());
            }
            let path = dir.join(format!("{label}.json"));
            if let Err(e) = m.write_chrome_trace(&path) {
                eprintln!("obs: failed to write {}: {e}", path.display());
            }
        }
    }
    if m.obs().counters_on() && std::env::var_os("GDR_SHMEM_OBS_SUMMARY").is_some() {
        eprintln!("== {label} ==\n{}", m.obs_report());
    }
}

/// Where a local (non-symmetric) buffer lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Loc {
    Host,
    Dev,
}

impl Loc {
    pub fn letter(self) -> char {
        match self {
            Loc::Host => 'H',
            Loc::Dev => 'D',
        }
    }
}

/// A point-to-point buffer configuration, named as in the paper:
/// the letters are (local buffer, remote buffer) — e.g. for a put,
/// `H-D` means host source, device destination.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Config {
    pub local: Loc,
    pub remote: Loc,
}

impl Config {
    pub const HH: Config = Config {
        local: Loc::Host,
        remote: Loc::Host,
    };
    pub const HD: Config = Config {
        local: Loc::Host,
        remote: Loc::Dev,
    };
    pub const DH: Config = Config {
        local: Loc::Dev,
        remote: Loc::Host,
    };
    pub const DD: Config = Config {
        local: Loc::Dev,
        remote: Loc::Dev,
    };

    pub fn remote_domain(self) -> Domain {
        match self.remote {
            Loc::Host => Domain::Host,
            Loc::Dev => Domain::Gpu,
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.local.letter(), self.remote.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_naming() {
        assert_eq!(Config::HD.to_string(), "H-D");
        assert_eq!(Config::DD.to_string(), "D-D");
        assert_eq!(Config::HD.remote_domain(), Domain::Gpu);
        assert_eq!(Config::DH.remote_domain(), Domain::Host);
    }
}
