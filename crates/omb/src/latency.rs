//! Point-to-point latency benchmarks (`osu_oshm_put` / `osu_oshm_get`
//! with OMB-GPU buffer placement).

use crate::sweep::iters_for;
use crate::{Config, Loc};
use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, RuntimeConfig, ShmemMachine};

/// One measured point of a latency sweep.
#[derive(Clone, Copy, Debug)]
pub struct LatencyPoint {
    pub bytes: u64,
    pub usec: f64,
}

const WARMUP: u64 = 5;

/// `shmem_putmem` latency: time per put + quiet at the origin, averaged
/// over OMB-style iterations. Builds a fresh pair machine per call.
pub fn put_latency(
    design: Design,
    cfg: RuntimeConfig,
    intra: bool,
    config: Config,
    bytes: u64,
) -> LatencyPoint {
    let spec = if intra {
        ClusterSpec::intranode_pair()
    } else {
        ClusterSpec::internode_pair()
    };
    let mut rc = cfg;
    rc.design = design;
    let m = ShmemMachine::build(spec, rc);
    let local = config.local;
    let domain = config.remote_domain();
    let out = m.run(move |pe| {
        let dest = pe.shmalloc(bytes + 4096, domain);
        let src = match local {
            Loc::Host => pe.malloc_host(bytes + 4096),
            Loc::Dev => pe.malloc_dev(bytes + 4096),
        };
        pe.barrier_all();
        if pe.my_pe() == 0 {
            for _ in 0..WARMUP {
                pe.putmem(dest, src, bytes, 1);
                pe.quiet();
            }
            let iters = iters_for(bytes);
            let t0 = pe.now();
            for _ in 0..iters {
                pe.putmem(dest, src, bytes, 1);
                pe.quiet();
            }
            let dt = (pe.now() - t0).as_us_f64() / iters as f64;
            pe.barrier_all();
            dt
        } else {
            pe.barrier_all();
            0.0
        }
    });
    crate::obs_finish(&m, &format!("put_latency_{config}_{bytes}"));
    LatencyPoint {
        bytes,
        usec: out[0],
    }
}

/// `shmem_getmem` latency at the origin.
pub fn get_latency(
    design: Design,
    cfg: RuntimeConfig,
    intra: bool,
    config: Config,
    bytes: u64,
) -> LatencyPoint {
    let spec = if intra {
        ClusterSpec::intranode_pair()
    } else {
        ClusterSpec::internode_pair()
    };
    let mut rc = cfg;
    rc.design = design;
    let m = ShmemMachine::build(spec, rc);
    let local = config.local;
    let domain = config.remote_domain();
    let out = m.run(move |pe| {
        let source = pe.shmalloc(bytes + 4096, domain);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let dst = match local {
                Loc::Host => pe.malloc_host(bytes + 4096),
                Loc::Dev => pe.malloc_dev(bytes + 4096),
            };
            for _ in 0..WARMUP {
                pe.getmem(dst, source, bytes, 1);
            }
            let iters = iters_for(bytes);
            let t0 = pe.now();
            for _ in 0..iters {
                pe.getmem(dst, source, bytes, 1);
            }
            let dt = (pe.now() - t0).as_us_f64() / iters as f64;
            pe.barrier_all();
            dt
        } else {
            pe.barrier_all();
            0.0
        }
    });
    crate::obs_finish(&m, &format!("get_latency_{config}_{bytes}"));
    LatencyPoint {
        bytes,
        usec: out[0],
    }
}

/// Sweep helper: latency for every size in `sizes`.
pub fn put_sweep(
    design: Design,
    cfg: RuntimeConfig,
    intra: bool,
    config: Config,
    sizes: &[u64],
) -> Vec<LatencyPoint> {
    sizes
        .iter()
        .map(|&b| put_latency(design, cfg, intra, config, b))
        .collect()
}

/// Sweep helper for gets.
pub fn get_sweep(
    design: Design,
    cfg: RuntimeConfig,
    intra: bool,
    config: Config,
    sizes: &[u64],
) -> Vec<LatencyPoint> {
    sizes
        .iter()
        .map(|&b| get_latency(design, cfg, intra, config, b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> RuntimeConfig {
        RuntimeConfig::tuned(Design::EnhancedGdr)
    }

    #[test]
    fn latency_grows_with_size() {
        let small = put_latency(Design::EnhancedGdr, rc(), false, Config::DD, 8);
        let big = put_latency(Design::EnhancedGdr, rc(), false, Config::DD, 1 << 20);
        assert!(big.usec > small.usec * 10.0);
    }

    #[test]
    fn gdr_beats_baseline_for_small_messages() {
        let base = put_latency(Design::HostPipeline, rc(), false, Config::DD, 8);
        let gdr = put_latency(Design::EnhancedGdr, rc(), false, Config::DD, 8);
        assert!(gdr.usec * 3.0 < base.usec, "{} vs {}", gdr.usec, base.usec);
    }

    #[test]
    fn get_latency_reasonable() {
        let p = get_latency(Design::EnhancedGdr, rc(), true, Config::HD, 4);
        assert!(p.usec > 0.5 && p.usec < 10.0, "{}", p.usec);
    }
}
