//! `chaos_trace` — CI driver for the fault-injection observability path.
//!
//! ```text
//! chaos_trace OUT_TRACE.json [--degraded]
//! ```
//!
//! Runs one span-traced inter-node workload under a fixed seeded fault
//! plan — transient CQE errors on the host-RDMA posts plus a "GDR
//! disabled on node 1" capability fault — and writes the Chrome trace
//! to `OUT_TRACE.json`. The trace deterministically contains `fault`,
//! `retry` and `fallback` instants, so CI can assert that `gdrprof`
//! surfaces the fault section and the fallback decision.
//!
//! `--degraded` raises the CQE error rate to certainty with a retry
//! budget of one, so every faulted op exhausts its retries: the
//! resulting report's recovery rate collapses, which CI uses as the
//! live regression the `gdrprof diff` recovery gate must catch.

use faults::FaultPlan;
use obs::ObsLevel;
use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut out = None;
    let mut degraded = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--degraded" => degraded = true,
            _ if out.is_none() => out = Some(a),
            _ => {
                eprintln!("usage: chaos_trace OUT_TRACE.json [--degraded]");
                return ExitCode::from(1);
            }
        }
    }
    let Some(out) = out else {
        eprintln!("usage: chaos_trace OUT_TRACE.json [--degraded]");
        return ExitCode::from(1);
    };

    let mut plan = FaultPlan::default()
        .with_seed(42)
        .with_cqe_errors(if degraded { 1000 } else { 150 })
        .with_late_completions(100, 10_000)
        .with_gdr_disabled(1);
    if degraded {
        plan = plan.with_retry(1, 2_000, 64_000);
    }
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let hdest = pe.shmalloc(64 << 10, Domain::Host);
        let ddest = pe.shmalloc(1 << 20, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let hsrc = pe.malloc_host(64 << 10);
            let dsrc = pe.malloc_dev(1 << 20);
            // enough host-RDMA posts to draw several transient faults
            for i in 0..12u64 {
                let _ = pe.try_putmem(hdest.add(512 * i), hsrc, 512, 1);
            }
            pe.quiet();
            // device-destination put: GDR is disabled on node 1, so the
            // dispatcher must record a fallback onto a GDR-free path
            let _ = pe.try_putmem(ddest, dsrc, 256 << 10, 1);
            pe.quiet();
            let _ = pe.try_getmem(hsrc, hdest, 4096, 1);
        }
        pe.barrier_all();
    });
    if let Err(e) = std::fs::write(&out, m.obs().chrome_trace()) {
        eprintln!("chaos_trace: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
