//! `chaos_trace` — CI driver for the fault-injection observability path.
//!
//! ```text
//! chaos_trace OUT_TRACE.json [--degraded | --pipeline]
//! ```
//!
//! Runs one span-traced inter-node workload under a fixed seeded fault
//! plan — transient CQE errors on the host-RDMA posts plus a "GDR
//! disabled on node 1" capability fault — and writes the Chrome trace
//! to `OUT_TRACE.json`. The trace deterministically contains `fault`,
//! `retry` and `fallback` instants, so CI can assert that `gdrprof`
//! surfaces the fault section and the fallback decision.
//!
//! `--degraded` raises the CQE error rate to near-certainty with a
//! retry budget of one, so almost every faulted op exhausts its
//! retries (a few survive — chunk posts draw too now, and a total
//! wipeout would leave no analyzable ops): the resulting report's
//! recovery rate collapses, which CI uses as the live regression the
//! `gdrprof diff` recovery gate must catch.
//!
//! `--pipeline` instead runs a large D-D put whose chunk posts draw
//! from a heavy CQE stream with a retry budget of one: the trace
//! deterministically contains `chunk-retry` and `partial-delivery`
//! instants, which CI greps for to gate the chunk-recovery path.
//!
//! `--burst` runs a steady put cadence across a correlated burst
//! window with the health breaker armed: every post inside the window
//! fails, the breaker demotes `direct-gdr`, traffic rides the fallback
//! path, and after cooldown a half-open probe re-promotes it. The
//! trace deterministically contains `demote`, `probe` and `promote`
//! instants, which CI greps for and which `gdrprof` folds into the
//! health report section.
//!
//! `--crash` runs a steady put cadence across a scheduled fail-stop
//! of the peer PE with a rejoin after the detection bound: the trace
//! deterministically contains the full `pe-dead` / `evict` /
//! `view-change` / `rejoin` membership lifecycle plus the rejoined
//! node's breaker `probe`/`promote` pair, which CI greps for and which
//! `gdrprof` folds into the membership report section.
//!
//! `--partition` runs the same cadence across a quorum-fenced network
//! split of the peer PE (typed `Partitioned` failures between fence and
//! heal), then pushes device-destination puts across an asymmetric cut
//! that severs only the direct GDR path — the trace deterministically
//! contains the `partition` / `fence` / `heal` lifecycle plus the cut's
//! reroute `fallback`, which CI greps for and which `gdrprof` folds
//! into the partitions report section.
//!
//! `--plan "<grammar>"` replays an **arbitrary** `GDR_SHMEM_FAULTS`
//! plan — typically a minimal repro shrunk by `gdrchaos` — under a
//! fixed mixed workload (pipelined D-D put plus a host-put/get tail).
//! The plan it ran under is echoed on stderr; the trace on stdout-path
//! is byte-identical across runs of the same grammar, which CI `cmp`s.

use faults::FaultPlan;
use obs::ObsLevel;
use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine, SimDuration};
use std::process::ExitCode;

const USAGE: &str = "usage:
  chaos_trace OUT_TRACE.json              transient CQE faults + GDR-off fallback
  chaos_trace OUT_TRACE.json --degraded   near-certain CQE faults, retry budget 1
  chaos_trace OUT_TRACE.json --pipeline   chunk-retry + partial-delivery trace
  chaos_trace OUT_TRACE.json --burst      breaker demote/probe/promote lifecycle
  chaos_trace OUT_TRACE.json --crash      fail-stop membership lifecycle + rejoin
  chaos_trace OUT_TRACE.json --partition  quorum fence/heal lifecycle + cut reroute
  chaos_trace OUT_TRACE.json --plan \"<grammar>\"   replay a GDR_SHMEM_FAULTS plan

environment:
  GDR_CHAOS_PIPE_SEED    fault seed of the --pipeline plan (default 1)
  GDR_CHAOS_BURST_SEED   fault seed of the --burst plan (default 5)
  GDR_CHAOS_CRASH_SEED   fault seed of the --crash plan (default 5)
  GDR_CHAOS_PART_SEED    fault seed of the --partition plan (default 5)

Traces are byte-identical across runs of the same mode and seed, so CI
can cmp two runs and grep the instants each mode guarantees.

exit codes:
  0  success
  1  usage error
  2  cannot write the output trace";

fn main() -> ExitCode {
    let mut out = None;
    let mut degraded = false;
    let mut pipeline = false;
    let mut burst = false;
    let mut crash = false;
    let mut partition = false;
    let mut grammar: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--degraded" => degraded = true,
            "--pipeline" => pipeline = true,
            "--burst" => burst = true,
            "--crash" => crash = true,
            "--partition" => partition = true,
            "--plan" => {
                i += 1;
                match args.get(i) {
                    Some(g) => grammar = Some(g.clone()),
                    None => {
                        eprintln!("{USAGE}");
                        return ExitCode::from(1);
                    }
                }
            }
            a if out.is_none() => out = Some(a.to_string()),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(1);
            }
        }
        i += 1;
    }
    let Some(out) = out else {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    };

    if let Some(grammar) = grammar {
        return plan_replay_trace(&out, &grammar);
    }
    if pipeline {
        return pipeline_fault_trace(&out);
    }
    if burst {
        return burst_fault_trace(&out);
    }
    if crash {
        return crash_fault_trace(&out);
    }
    if partition {
        return partition_fault_trace(&out);
    }

    let mut plan = FaultPlan::default()
        .with_seed(42)
        .with_cqe_errors(if degraded { 850 } else { 150 })
        .with_late_completions(100, 10_000)
        .with_gdr_disabled(1);
    if degraded {
        plan = plan.with_retry(1, 2_000, 64_000);
    }
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let hdest = pe.shmalloc(64 << 10, Domain::Host);
        let ddest = pe.shmalloc(1 << 20, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let hsrc = pe.malloc_host(64 << 10);
            let dsrc = pe.malloc_dev(1 << 20);
            // enough host-RDMA posts to draw several transient faults
            for i in 0..12u64 {
                let _ = pe.try_putmem(hdest.add(512 * i), hsrc, 512, 1);
            }
            pe.quiet();
            // device-destination put: GDR is disabled on node 1, so the
            // dispatcher must record a fallback onto a GDR-free path
            let _ = pe.try_putmem(ddest, dsrc, 256 << 10, 1);
            pe.quiet();
            let _ = pe.try_getmem(hsrc, hdest, 4096, 1);
        }
        pe.barrier_all();
    });
    if let Err(e) = std::fs::write(&out, m.obs().chrome_trace()) {
        eprintln!("chaos_trace: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// The `--crash` plan: PE 1 fail-stops at 120 us and rejoins at 500 us
/// while PE 0 keeps a steady 4 KiB put cadence at it. The puts land
/// until the crash, fail typed `PeerDead` from the detection instant
/// (crash + the 150 us detection bound), and land again once the rejoin
/// has re-registered the heap and walked the breaker's half-open probe
/// — so the trace deterministically carries the full `pe-dead` /
/// `evict` / `view-change` / `rejoin` lifecycle with the breaker's
/// `probe`/`promote` pair.
fn crash_fault_trace(out: &str) -> ExitCode {
    let seed = std::env::var("GDR_CHAOS_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let plan = FaultPlan::default().with_seed(seed).with_crash(1, 120_000, 500_000);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let dst = pe.shmalloc(4096, Domain::Host);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_host(4096);
            for _ in 0..40 {
                // typed PeerDead is expected across the dead window; the
                // cadence itself must never panic or hang
                let _ = pe.try_putmem(dst, src, 4096, 1);
                pe.compute(SimDuration::from_us(20));
            }
        }
    });
    if let Err(e) = std::fs::write(out, m.obs().chrome_trace()) {
        eprintln!("chaos_trace: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// The `--partition` plan: PE 1 is split off from 120 us to 500 us
/// (quorum fence at 270 us once the detection bound elapses, heal at
/// 550 us) while PE 0 keeps a steady 4 KiB host-put cadence at it —
/// puts land until the fence, fail typed `Partitioned` across it, and
/// land again after the heal. A generous asymmetric cut (0 -> 1) then
/// covers the tail of the run: the closing device-destination puts find
/// their direct GDR path severed and must reroute through the fallback
/// matrix, stamping the cut's `partition` instant. One deterministic
/// trace carries the whole `partition` / `fence` / `heal` lifecycle.
fn partition_fault_trace(out: &str) -> ExitCode {
    let seed = std::env::var("GDR_CHAOS_PART_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let plan = FaultPlan::default()
        .with_seed(seed)
        .with_partition_split(0b10, 120_000, 500_000)
        .with_partition_cut(0, 1, 600_000, 2_000_000);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let dst = pe.shmalloc(4096, Domain::Host);
        let ddst = pe.shmalloc(64 << 10, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let src = pe.malloc_host(4096);
            let dsrc = pe.malloc_dev(16 << 10);
            for _ in 0..40 {
                // typed Partitioned is expected between fence and heal;
                // the cadence itself must never panic or hang
                let _ = pe.try_putmem(dst, src, 4096, 1);
                pe.compute(SimDuration::from_us(20));
            }
            // by now the cut window is active: these D-D puts must ride
            // a GDR-free path instead of the severed direct one
            for i in 0..4u64 {
                let _ = pe.try_putmem(ddst.add(i * (16 << 10)), dsrc, 16 << 10, 1);
                pe.quiet();
                pe.compute(SimDuration::from_us(20));
            }
        }
    });
    if let Err(e) = std::fs::write(out, m.obs().chrome_trace()) {
        eprintln!("chaos_trace: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// The `--pipeline` plan: a 4 MB D-D put (8 pipeline chunks at the
/// tuned 512 KiB chunk size) under a heavy chunk-post CQE stream with a
/// retry budget of one, so the run deterministically records both
/// successful chunk replays and at least one exhausted chunk that
/// resolves as a typed partial delivery.
fn pipeline_fault_trace(out: &str) -> ExitCode {
    // fixed seed; overridable for exploring other deterministic fault
    // placements (CI uses the default)
    let seed = std::env::var("GDR_CHAOS_PIPE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let plan = FaultPlan::default()
        .with_seed(seed)
        .with_cqe_errors(450)
        .with_retry(1, 2_000, 64_000);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let len = 4u64 << 20;
        let ddest = pe.shmalloc(len, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let dsrc = pe.malloc_dev(len);
            // large D-D put -> pipeline-gdr-write; under this plan some
            // chunks replay, and with a budget of one at this rate at
            // least one chunk exhausts -> PartialDelivery
            match pe.try_putmem(ddest, dsrc, len, 1) {
                Ok(()) => {}
                Err(shmem_gdr::TransferError::PartialDelivery { .. }) => {}
                Err(e) => panic!("pipeline fault plan: unexpected error {e}"),
            }
            pe.quiet();
            // a second, smaller put that (at the CI seed) recovers and
            // completes: the trace needs at least one finished op for
            // gdrprof to analyze alongside the partial one
            match pe.try_putmem(ddest, dsrc, 1 << 20, 1) {
                Ok(()) => {}
                Err(shmem_gdr::TransferError::PartialDelivery { .. }) => {}
                Err(e) => panic!("pipeline fault plan: unexpected error {e}"),
            }
            pe.quiet();
        }
        pe.barrier_all();
    });
    if let Err(e) = std::fs::write(out, m.obs().chrome_trace()) {
        eprintln!("chaos_trace: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// The `--burst` plan: 8 KiB D-D puts on a ~10 us cadence with a
/// correlated burst window at 150..200 us (after the first put's cold
/// registration cost, inside the steady cadence) and the health breaker
/// armed. Puts inside the window exhaust their retries, the breaker
/// demotes `direct-gdr` (clean ops then ride the fallback matrix), and
/// once the cooldown lapses a half-open probe re-promotes it — the full
/// demote -> probe -> promote lifecycle in one deterministic trace.
///
/// The run also arms the windowed metrics plane (50 us windows) with
/// two SLO budgets: a per-window recovery-rate floor that only the
/// burst window can breach (its puts exhaust every retry, so the
/// window recovers 0 of its injected faults) and a p99 ceiling sized
/// above the cold-start window (so it never trips). The trace thus
/// deterministically carries `window-snapshot` records and
/// `slo-violation` instants only inside the burst window — the input
/// for the `gdrprof timeline` CI gates.
/// The `--plan` mode: replay an arbitrary `GDR_SHMEM_FAULTS` grammar
/// string (typically a `gdrchaos` minimal repro) under a fixed mixed
/// workload. The workload covers the fault surfaces every plan
/// dimension can reach — a pipelined D-D put (chunk retries, partial
/// delivery, proxy stalls), a run of host-RDMA puts (CQE retry path,
/// link windows, bursts) and a get tail — while tolerating every typed
/// error, so any plan replays to a deterministic trace rather than an
/// abort. The effective plan (post-clamping) is printed on stderr.
fn plan_replay_trace(out: &str, grammar: &str) -> ExitCode {
    let plan = FaultPlan::parse(grammar);
    eprintln!("chaos_trace: plan: {plan}");
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_quiesce_ns(200_000_000)
        .with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let pipe_len = 2u64 << 20;
        let ddest = pe.shmalloc(pipe_len, Domain::Gpu);
        let hdest = pe.shmalloc(64 << 10, Domain::Host);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let dsrc = pe.malloc_dev(pipe_len);
            let hsrc = pe.malloc_host(64 << 10);
            // pipelined D-D put: chunk-level retry/partial surface
            let _ = pe.try_putmem(ddest, dsrc, pipe_len, 1);
            pe.quiet();
            // host-RDMA cadence: per-op CQE retry surface
            for i in 0..12u64 {
                let _ = pe.try_putmem(hdest.add(4096 * i), hsrc, 4096, 1);
            }
            pe.quiet();
            let _ = pe.try_getmem(hsrc, hdest, 8192, 1);
            pe.quiet();
        }
        pe.barrier_all();
    });
    if let Err(e) = std::fs::write(out, m.obs().chrome_trace()) {
        eprintln!("chaos_trace: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn burst_fault_trace(out: &str) -> ExitCode {
    let seed = std::env::var("GDR_CHAOS_BURST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let plan = FaultPlan::default()
        .with_seed(seed)
        .with_burst_window(150_000, 200_000)
        .with_retry(2, 2_000, 16_000)
        .with_health(50_000, 3, 150_000);
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr)
        .with_faults(plan)
        .with_obs(ObsLevel::Spans)
        .with_obs_window(50);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.obs().set_slo(
        obs::SloPolicy::parse("recovery:direct-gdr=0.9; p99:put/*/*=150")
            .expect("burst SLO policy must parse"),
    );
    m.run(|pe| {
        let len = 8u64 << 10;
        let iters = 48u64;
        let ddest = pe.shmalloc(len * iters, Domain::Gpu);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            let dsrc = pe.malloc_dev(len);
            for i in 0..iters {
                // typed errors are expected while the burst is active;
                // the cadence itself must never panic or hang
                let _ = pe.try_putmem(ddest.add(len * i), dsrc, len, 1);
                pe.quiet();
                pe.compute(SimDuration::from_us(5));
            }
        }
        pe.barrier_all();
    });
    if let Err(e) = std::fs::write(out, m.obs().chrome_trace()) {
        eprintln!("chaos_trace: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
