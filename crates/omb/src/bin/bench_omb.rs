//! `bench_omb` — the CI bench driver: runs the OMB-GPU latency matrix,
//! records one span-traced inter-node D-D workload, profiles it with
//! the `obs-analyze` critical-path analyzer, and writes everything as
//! one machine-readable `BENCH_omb.json` document.
//!
//! ```text
//! bench_omb [OUT_JSON] [TRACE_OUT] [SWEEP_TRACE]
//! ```
//!
//! `OUT_JSON` defaults to `BENCH_omb.json`; when `TRACE_OUT` is given,
//! the traced workload's Chrome trace is also written there (CI feeds
//! it to `gdrprof analyze`). When `SWEEP_TRACE` is given, a second
//! traced workload runs: a message-size sweep against one intra-socket
//! and one inter-socket peer GPU, crossing every protocol threshold —
//! the input `gdrprof crossover` and `gdrprof whatif` profile. The
//! simulation runs in virtual time and every serializer iterates
//! sorted maps, so two runs of this binary produce byte-identical
//! output — CI `cmp`s them.

use obs::json::ObjWriter;
use obs::ObsLevel;
use omb::{get_latency, put_latency, Config, LatencyPoint};
use pcie_sim::{ClusterSpec, PlacementPolicy};
use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine};
use std::process::ExitCode;

fn rc() -> RuntimeConfig {
    RuntimeConfig::tuned(Design::EnhancedGdr)
}

/// The span-traced workload: two inter-node PEs, GPU symmetric heap;
/// a small put (direct GDR), a large put (pipelined GDR write), a
/// quiet, and a large get (proxy pipeline), bracketed by barriers —
/// the same shape the paper's Fig. 7/8 latency discussion walks
/// through.
fn traced_workload() -> std::sync::Arc<ShmemMachine> {
    // 50us windows arm the metrics plane: the trace (and the report's
    // timeline section) carries deterministic window snapshots
    let cfg = rc().with_obs(ObsLevel::Spans).with_obs_window(50);
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), cfg);
    m.run(|pe| {
        let dest = pe.shmalloc(4 << 20, Domain::Gpu);
        let src = pe.malloc_dev(4 << 20);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            pe.putmem(dest, src, 64, 1);
            pe.putmem(dest, src, 2 << 20, 1);
            pe.quiet();
            pe.getmem(src, dest, 2 << 20, 1);
        }
        pe.barrier_all();
    });
    m
}

/// The crossover-sweep workload: two nodes, two PEs and two GPUs per
/// node, one HCA on socket 0 — so PE 2's GPU is intra-socket to its
/// HCA and PE 3's is inter-socket (paper Table III's two relations).
/// PE 0 sweeps D-D puts and gets against both peers across every
/// protocol tier: direct GDR, pipelined GDR write, proxy pipeline.
/// Three repetitions per size give the crossover profiler stable
/// means.
fn sweep_workload() -> std::sync::Arc<ShmemMachine> {
    let spec = ClusterSpec {
        nodes: 2,
        procs_per_node: 2,
        gpus_per_node: 2,
        hcas_per_node: 1,
        sockets_per_node: 2,
        placement: PlacementPolicy::Affinity,
    };
    let cfg = rc().with_obs(ObsLevel::Spans);
    let m = ShmemMachine::build(spec, cfg);
    m.run(|pe| {
        let dest = pe.shmalloc(2 << 20, Domain::Gpu);
        let src = pe.malloc_dev(2 << 20);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            for target in [2usize, 3] {
                for b in [4096u64, 16384, 32768, 65536, 262144, 1 << 20] {
                    for _ in 0..3 {
                        pe.putmem(dest, src, b, target);
                        pe.quiet();
                        pe.getmem(src, dest, b, target);
                    }
                }
            }
        }
        pe.barrier_all();
    });
    m
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let out_json = args.next().unwrap_or_else(|| "BENCH_omb.json".into());
    let trace_out = args.next();
    let sweep_out = args.next();

    // OMB latency matrix: inter-node D-D put/get across the size range
    // that exercises every protocol tier (direct GDR, pipelined write,
    // proxy pipeline).
    let sizes: [u64; 5] = [8, 64, 4096, 65536, 1 << 20];
    let mut results: Vec<(String, LatencyPoint)> = Vec::new();
    for &b in &sizes {
        let p = put_latency(Design::EnhancedGdr, rc(), false, Config::DD, b);
        results.push((format!("put/D-D/inter/{b}"), p));
    }
    for &b in &sizes {
        let p = get_latency(Design::EnhancedGdr, rc(), false, Config::DD, b);
        results.push((format!("get/D-D/inter/{b}"), p));
    }

    // traced workload -> critical-path analysis
    let m = traced_workload();
    let trace = m.obs().chrome_trace();
    if let Some(path) = &trace_out {
        if let Err(e) = std::fs::write(path, &trace) {
            eprintln!("bench_omb: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    let report = match obs_analyze::analyze_str(&trace) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_omb: trace analysis failed: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("{}", report.text());

    // optional crossover sweep (CI feeds it to `gdrprof crossover` /
    // `gdrprof whatif`)
    if let Some(path) = &sweep_out {
        let sm = sweep_workload();
        if let Err(e) = std::fs::write(path, sm.obs().chrome_trace()) {
            eprintln!("bench_omb: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    let mut doc = String::with_capacity(4096);
    {
        let mut o = ObjWriter::new(&mut doc);
        o.str_field("schema", "BENCH-omb-v1");
        o.str_field("design", "enhanced-gdr");
        {
            let buf = o.raw_field("results");
            buf.push('[');
            for (i, (name, p)) in results.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut e = ObjWriter::new(buf);
                e.str_field("name", name)
                    .u64_field("bytes", p.bytes)
                    .num_field("usec", p.usec);
                e.finish();
            }
            buf.push(']');
        }
        // the full gdrprof report of the traced workload, inline
        o.raw_field("analysis").push_str(&report.to_json());
        o.finish();
    }
    doc.push('\n');
    if let Err(e) = std::fs::write(&out_json, &doc) {
        eprintln!("bench_omb: cannot write {out_json}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "bench_omb: {} results, {} ops analyzed, flow linkage {:.1}% -> {out_json}",
        results.len(),
        report.ops_analyzed,
        report.flow_linkage() * 100.0
    );
    ExitCode::SUCCESS
}
