//! The overlap / one-sidedness benchmark (paper Fig. 10).
//!
//! Two PEs: the origin issues a put + quiet while the target is busy
//! computing for a configurable time. A truly one-sided runtime keeps
//! the origin's communication time flat as target compute grows; the
//! host-based pipeline's communication time tracks it.

use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, RuntimeConfig, ShmemMachine, SimDuration};

/// One measured point: target compute time vs origin comm time (us).
#[derive(Clone, Copy, Debug)]
pub struct OverlapPoint {
    pub target_compute_us: f64,
    pub comm_time_us: f64,
}

/// Inter-node D-D put of `bytes` while the target computes.
pub fn overlap_put(design: Design, cfg: RuntimeConfig, bytes: u64, target_compute_us: u64) -> OverlapPoint {
    let mut rc = cfg;
    rc.design = design;
    let m = ShmemMachine::build(ClusterSpec::internode_pair(), rc);
    let out = m.run(move |pe| {
        let dest = pe.shmalloc(bytes + 4096, shmem_gdr::Domain::Gpu);
        let src = pe.malloc_dev(bytes + 4096);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            // warm the path (registration, staging)
            pe.putmem(dest, src, bytes, 1);
            pe.quiet();
            pe.barrier_all();
            let t0 = pe.now();
            pe.putmem(dest, src, bytes, 1);
            pe.quiet();
            let dt = (pe.now() - t0).as_us_f64();
            pe.barrier_all();
            dt
        } else {
            pe.barrier_all();
            pe.compute(SimDuration::from_us(target_compute_us));
            pe.barrier_all();
            0.0
        }
    });
    crate::obs_finish(&m, &format!("overlap_put_{bytes}_{target_compute_us}us"));
    OverlapPoint {
        target_compute_us: target_compute_us as f64,
        comm_time_us: out[0],
    }
}

/// Sweep target compute times for one message size.
pub fn overlap_sweep(
    design: Design,
    cfg: RuntimeConfig,
    bytes: u64,
    compute_points_us: &[u64],
) -> Vec<OverlapPoint> {
    compute_points_us
        .iter()
        .map(|&c| overlap_put(design, cfg, bytes, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enhanced_stays_flat_baseline_grows() {
        let cfg = RuntimeConfig::tuned(Design::EnhancedGdr);
        let e0 = overlap_put(Design::EnhancedGdr, cfg, 8 << 10, 0);
        let e1 = overlap_put(Design::EnhancedGdr, cfg, 8 << 10, 200);
        assert!(e1.comm_time_us < e0.comm_time_us * 1.1);

        let b0 = overlap_put(Design::HostPipeline, cfg, 8 << 10, 0);
        let b1 = overlap_put(Design::HostPipeline, cfg, 8 << 10, 200);
        assert!(
            b1.comm_time_us > b0.comm_time_us + 100.0,
            "{} -> {}",
            b0.comm_time_us,
            b1.comm_time_us
        );
    }
}
