//! Bandwidth and message-rate benchmarks (`osu_oshm_put_bw`-style):
//! a window of back-to-back non-blocking puts followed by one quiet.

use crate::sweep::iters_for;
use crate::{Config, Loc};
use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, RuntimeConfig, ShmemMachine};

/// One measured bandwidth point.
#[derive(Clone, Copy, Debug)]
pub struct BwPoint {
    pub bytes: u64,
    /// MB/s (1 MB = 1e6 bytes, Mellanox convention).
    pub mbps: f64,
}

/// Uni-directional put bandwidth with a window of `window` nbi puts per
/// quiet, inter- or intra-node.
pub fn put_bandwidth(
    design: Design,
    cfg: RuntimeConfig,
    intra: bool,
    config: Config,
    bytes: u64,
    window: u64,
) -> BwPoint {
    let spec = if intra {
        ClusterSpec::intranode_pair()
    } else {
        ClusterSpec::internode_pair()
    };
    let mut rc = cfg;
    rc.design = design;
    // bandwidth windows need heap + staging headroom
    rc.staging = (bytes * window * 2).max(rc.staging);
    rc.gpu_heap = rc.gpu_heap.max(bytes * (window + 2) + (1 << 20));
    rc.dev_mem = rc.dev_mem.max(2 * rc.gpu_heap + bytes * (window + 2) + (1 << 20));
    rc.private_host = rc.private_host.max(bytes * (window + 2) + (1 << 20));
    let m = ShmemMachine::build(spec, rc);
    let local = config.local;
    let domain = config.remote_domain();
    let out = m.run(move |pe| {
        let dest = pe.shmalloc(bytes * window + 4096, domain);
        let src = match local {
            Loc::Host => pe.malloc_host(bytes * window + 4096),
            Loc::Dev => pe.malloc_dev(bytes * window + 4096),
        };
        pe.barrier_all();
        if pe.my_pe() == 0 {
            // warm
            pe.putmem(dest, src, bytes, 1);
            pe.quiet();
            let iters = (iters_for(bytes) / 5).max(3);
            let t0 = pe.now();
            for _ in 0..iters {
                for w in 0..window {
                    pe.putmem_nbi(dest.add(w * bytes), src.add(w * bytes), bytes, 1);
                }
                pe.quiet();
            }
            let secs = (pe.now() - t0).as_secs_f64();
            let total = (bytes * window * iters) as f64;
            pe.barrier_all();
            total / 1e6 / secs
        } else {
            pe.barrier_all();
            0.0
        }
    });
    crate::obs_finish(&m, &format!("put_bw_{config}_{bytes}x{window}"));
    BwPoint {
        bytes,
        mbps: out[0],
    }
}

/// Small-message rate (million ops/s): 8-byte nbi puts in large windows.
pub fn message_rate(design: Design, cfg: RuntimeConfig, intra: bool) -> f64 {
    let p = put_bandwidth(design, cfg, intra, Config::DD, 8, 64);
    p.mbps * 1e6 / 8.0 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_put_bandwidth_approaches_wire_or_staging_limit() {
        let cfg = RuntimeConfig::tuned(Design::EnhancedGdr);
        let p = put_bandwidth(Design::EnhancedGdr, cfg, false, Config::HD, 1 << 20, 4);
        // H-D put: direct GDR at wire speed minus overheads
        assert!(p.mbps > 4000.0, "H-D bw {} MB/s", p.mbps);
        assert!(p.mbps <= 6400.0, "exceeds wire: {}", p.mbps);
    }

    #[test]
    fn window_amortizes_latency() {
        let cfg = RuntimeConfig::tuned(Design::EnhancedGdr);
        let w1 = put_bandwidth(Design::EnhancedGdr, cfg, false, Config::DD, 4096, 1);
        let w16 = put_bandwidth(Design::EnhancedGdr, cfg, false, Config::DD, 4096, 16);
        assert!(w16.mbps > w1.mbps * 2.0, "{} vs {}", w1.mbps, w16.mbps);
    }

    #[test]
    fn gdr_message_rate_beats_baseline() {
        let cfg = RuntimeConfig::tuned(Design::EnhancedGdr);
        let gdr = message_rate(Design::EnhancedGdr, cfg, false);
        let base = message_rate(Design::HostPipeline, cfg, false);
        assert!(gdr > 2.0 * base, "gdr {gdr} vs baseline {base} Mops");
    }
}
