//! Figure runners: each returns the series the corresponding paper
//! figure plots, so bench targets stay thin and tests can assert shapes.

use apps_sim::{lbm, stencil2d, LbmParams, LbmVariant, StencilParams};
use omb::{latency, overlap, Config};
use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, RuntimeConfig, ShmemMachine};

/// Which operation a latency figure plots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    Put,
    Get,
}

/// One design's latency series over a size sweep.
pub struct Series {
    pub design: Design,
    pub points: Vec<(u64, f64)>,
}

/// Latency sweep for one (figure panel) = op × locality × config,
/// for the given designs.
pub fn latency_panel(
    op: Op,
    intra: bool,
    config: Config,
    designs: &[Design],
    sizes: &[u64],
) -> Vec<Series> {
    designs
        .iter()
        .map(|&design| {
            let rc = RuntimeConfig::tuned(design);
            let points = sizes
                .iter()
                .map(|&b| {
                    let p = match op {
                        Op::Put => latency::put_latency(design, rc, intra, config, b),
                        Op::Get => latency::get_latency(design, rc, intra, config, b),
                    };
                    (p.bytes, p.usec)
                })
                .collect();
            Series { design, points }
        })
        .collect()
}

/// Fig. 10: origin comm time vs target compute, one message size.
pub fn overlap_panel(bytes: u64, compute_us: &[u64]) -> Vec<(Design, Vec<(f64, f64)>)> {
    [Design::HostPipeline, Design::EnhancedGdr]
        .iter()
        .map(|&design| {
            let rc = RuntimeConfig::tuned(design);
            let pts = compute_us
                .iter()
                .map(|&c| {
                    let p = overlap::overlap_put(design, rc, bytes, c);
                    (p.target_compute_us, p.comm_time_us)
                })
                .collect();
            (design, pts)
        })
        .collect()
}

/// Runtime configuration used by the application figures: modest heaps
/// so 64-node machines stay cheap to build.
pub fn app_config(design: Design) -> RuntimeConfig {
    let mut rc = RuntimeConfig::tuned(design);
    rc.host_heap = 2 << 20;
    rc.gpu_heap = 24 << 20;
    rc.staging = 4 << 20;
    rc.dev_mem = 32 << 20;
    rc.private_host = 4 << 20;
    rc
}

/// Fig. 11: Stencil2D execution time (seconds for `iters` iterations)
/// per design, across node counts.
pub fn stencil_scaling(
    n: usize,
    iters: usize,
    nodes: &[usize],
    designs: &[Design],
) -> Vec<(Design, Vec<(usize, f64)>)> {
    designs
        .iter()
        .map(|&design| {
            let pts = nodes
                .iter()
                .map(|&nn| {
                    let m = ShmemMachine::build(ClusterSpec::wilkes(nn, 1), app_config(design));
                    let r = stencil2d::run(&m, StencilParams::bench(n, iters));
                    (nn, r.elapsed.as_secs_f64())
                })
                .collect();
            (design, pts)
        })
        .collect()
}

/// Fig. 12: LBM Evolution time (seconds for `steps` steps) per variant.
/// `weak`: the paper's weak-scaling setup — `n`³ per GPU with a balanced
/// 3-D process grid (e.g. "4 x 4 x 4" at 64 GPUs); strong: a fixed `n`³
/// global grid decomposed along Z (§IV).
pub fn lbm_scaling(
    n: usize,
    steps: usize,
    nodes: &[usize],
    weak: bool,
) -> Vec<(LbmVariant, Vec<(usize, f64)>)> {
    [LbmVariant::CudaAwareMpi, LbmVariant::ShmemGdr]
        .iter()
        .map(|&variant| {
            let pts = nodes
                .iter()
                .map(|&nn| {
                    let m = ShmemMachine::build(
                        ClusterSpec::wilkes(nn, 1),
                        app_config(Design::EnhancedGdr),
                    );
                    let params = if weak {
                        let (ax, ay, az) = apps_sim::grid_3d(nn);
                        LbmParams::bench(n * ax, n * ay, n * az, steps, variant).with_3d()
                    } else {
                        LbmParams::bench(n, n, n, steps, variant)
                    };
                    let r = lbm::run(&m, params);
                    (nn, r.evolution.as_secs_f64())
                })
                .collect();
            (variant, pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_panel_shapes() {
        let s = latency_panel(
            Op::Put,
            false,
            Config::DD,
            &[Design::HostPipeline, Design::EnhancedGdr],
            &[8, 2048],
        );
        assert_eq!(s.len(), 2);
        // enhanced (index 1) beats baseline (index 0) at 8B by >5x
        let r = s[0].points[0].1 / s[1].points[0].1;
        assert!(r > 5.0, "speedup {r}");
    }

    #[test]
    fn stencil_scaling_strong_decreases_with_nodes() {
        let pts = stencil_scaling(512, 3, &[4, 16], &[Design::EnhancedGdr]);
        let series = &pts[0].1;
        assert!(series[1].1 < series[0].1, "no strong scaling: {series:?}");
    }

    #[test]
    fn lbm_shmem_beats_mpi_at_scale() {
        let out = lbm_scaling(32, 3, &[4], false);
        let mpi = out[0].1[0].1;
        let shmem = out[1].1[0].1;
        assert!(shmem < mpi, "shmem {shmem} vs mpi {mpi}");
    }
}
