//! # bench-gdr — harnesses that regenerate every table and figure
//!
//! One bench target per experiment in the paper's evaluation (§V), each
//! printing the same rows/series the paper reports. Numbers are
//! *simulated* microseconds from the calibrated Wilkes profile — the
//! point is the **shape** (who wins, by what factor, where crossovers
//! fall), recorded against the paper in `EXPERIMENTS.md`.
//!
//! Run them all with `cargo bench`, or one with
//! `cargo bench --bench fig8_internode_dd`.

pub mod figures;
pub mod tables;

/// Iteration scale: set `BENCH_FAST=1` for quick smoke runs.
pub fn app_iters(default_iters: usize) -> usize {
    if std::env::var("BENCH_FAST").is_ok() {
        (default_iters / 10).max(2)
    } else {
        default_iters
    }
}

/// Print a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("\n=== {id}: {caption} ===");
}

/// Print one latency series as aligned columns.
pub fn print_series(label: &str, points: &[(u64, f64)]) {
    println!("--- {label}");
    println!("{:>10}  {:>12}", "bytes", "latency(us)");
    for (b, us) in points {
        println!("{b:>10}  {us:>12.2}");
    }
}

/// Print a comparison of two series (baseline vs proposed).
pub fn print_comparison(
    sizes: &[u64],
    base_label: &str,
    base: &[f64],
    new_label: &str,
    new: &[f64],
) {
    println!(
        "{:>10}  {:>14}  {:>14}  {:>9}",
        "bytes", base_label, new_label, "speedup"
    );
    for (i, b) in sizes.iter().enumerate() {
        println!(
            "{b:>10}  {:>14.2}  {:>14.2}  {:>8.2}x",
            base[i],
            new[i],
            base[i] / new[i]
        );
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fast_mode_shrinks_iterations() {
        // without the env var the default passes through
        if std::env::var("BENCH_FAST").is_err() {
            assert_eq!(super::app_iters(100), 100);
        }
    }
}
