//! Table runners for the paper's Tables I–III.

use gpu_sim::GpuRuntime;
use ib_sim::IbVerbs;
use omb::{latency, Config};
use pcie_sim::mem::{MemRef, MemSpace};
use pcie_sim::profile::P2pDir;
use pcie_sim::{Cluster, ClusterSpec, GpuId, HwProfile, ProcId};
use shmem_gdr::{Design, RuntimeConfig};
use sim_core::Sim;

/// Table II row: 4-byte latencies at the IB verbs level and at the
/// OpenSHMEM level, Host-Host and GPU-GPU, inter-node.
#[derive(Clone, Copy, Debug)]
pub struct Table2 {
    pub ib_sendrecv_hh: f64,
    pub ib_sendrecv_dd: f64,
    pub shmem_put_hh: f64,
    pub shmem_put_dd_baseline: f64,
    pub shmem_put_dd_gdr: f64,
}

/// Measure the raw verbs-level send/recv 4 B latency between two nodes,
/// with host or device buffers (the paper's "IB level").
pub fn ib_sendrecv_latency(device: bool) -> f64 {
    let sim = Sim::new();
    let cluster = Cluster::new(ClusterSpec::internode_pair(), HwProfile::wilkes());
    for p in cluster.topo().all_procs() {
        cluster.create_host_arena(p, 1 << 20);
    }
    let gpus = GpuRuntime::new(&sim, cluster, 16 << 20);
    let ib = IbVerbs::new(&sim, gpus);
    // buffers + registration (GDR when device)
    let mk = |pe: u32| -> MemRef {
        if device {
            // pe0 -> gpu0 (node0), pe1 -> gpu2 (node1)
            let g = ib.cluster().topo().gpu_of(ProcId(pe));
            ib.gpus().gpu(g).malloc(4096).unwrap()
        } else {
            MemRef::new(MemSpace::Host(ProcId(pe)), 0)
        }
    };
    let b0 = mk(0);
    let b1 = mk(1);
    ib.reg_mr_nocost(ProcId(0), b0, 4096);
    ib.reg_mr_nocost(ProcId(1), b1, 4096);
    let ib2 = ib.clone();
    let out = sim.run(2, move |ctx| {
        let me = ProcId(ctx.rank() as u32);
        let iters = 50u64;
        if me == ProcId(0) {
            let t0 = ctx.now();
            for _ in 0..iters {
                let c = ib2.post_send(&ctx, me, ProcId(1), b0, 4).unwrap();
                ctx.wait(&c);
            }
            (ctx.now() - t0).as_us_f64() / iters as f64
        } else {
            for _ in 0..iters {
                let c = ib2.post_recv(&ctx, me, ProcId(0), b1, 4).unwrap();
                ctx.wait(&c);
            }
            0.0
        }
    });
    out[0]
}

/// Produce the full Table II.
pub fn table2() -> Table2 {
    let rc = RuntimeConfig::tuned(Design::EnhancedGdr);
    Table2 {
        ib_sendrecv_hh: ib_sendrecv_latency(false),
        ib_sendrecv_dd: ib_sendrecv_latency(true),
        shmem_put_hh: latency::put_latency(Design::EnhancedGdr, rc, false, Config::HH, 4).usec,
        shmem_put_dd_baseline: latency::put_latency(Design::HostPipeline, rc, false, Config::DD, 4)
            .usec,
        shmem_put_dd_gdr: latency::put_latency(Design::EnhancedGdr, rc, false, Config::DD, 4).usec,
    }
}

/// Table III row: measured P2P bandwidth (MB/s) through the simulated
/// PCIe fabric, plus the percentage of FDR wire bandwidth.
#[derive(Clone, Copy, Debug)]
pub struct P2pRow {
    pub mbps: f64,
    pub pct_of_fdr: f64,
}

/// Measure raw P2P bandwidth by timing a large DMA reservation on a
/// GPU's PCIe port (exactly what the paper's P2P micro-benchmark does).
pub fn p2p_bandwidth(dir: P2pDir, intra_socket: bool) -> P2pRow {
    let sim = Sim::new();
    let cluster = Cluster::new(ClusterSpec::wilkes(1, 2), HwProfile::wilkes());
    let gpus = GpuRuntime::new(&sim, cluster.clone(), 256 << 20);
    let bytes: u64 = 128 << 20;
    let g = gpus.gpu(GpuId(0));
    let grant = gpus.p2p_reserve(g, sim_core::SimTime::ZERO, bytes, dir, intra_socket);
    let secs = (grant.depart - grant.start).as_secs_f64();
    let mbps = bytes as f64 / 1e6 / secs;
    P2pRow {
        mbps,
        pct_of_fdr: 100.0 * mbps * 1e6 / cluster.hw().ib.wire_bw,
    }
}

/// Table I: the feature/design comparison, probed from live machines
/// (protocol counters + supported-configuration checks).
pub fn table1_rows() -> Vec<[String; 4]> {
    let feature = |d: Design| -> [String; 4] {
        let intra = "(D-D, H-D, D-H)".to_string();
        let inter = match d {
            Design::Naive => "H-H staging only".to_string(),
            Design::HostPipeline => "D-D".to_string(),
            Design::EnhancedGdr => "(D-D, H-D, D-H)".to_string(),
        };
        let schemes = match d {
            Design::Naive => "user cudaMemcpy",
            Design::HostPipeline => "IPC, pipeline",
            Design::EnhancedGdr => "GDR, IPC, pipeline, proxy",
        };
        let one_sided = match d {
            Design::Naive => "poor",
            Design::HostPipeline => "intra: good / inter: poor",
            Design::EnhancedGdr => "good",
        };
        [
            if d == Design::Naive {
                "H-H only".into()
            } else {
                intra
            },
            inter,
            schemes.into(),
            one_sided.into(),
        ]
    };
    vec![
        feature(Design::Naive),
        feature(Design::HostPipeline),
        feature(Design::EnhancedGdr),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_profile_caps() {
        let r = p2p_bandwidth(P2pDir::ReadFromGpu, true);
        assert!((r.mbps - 3421.0).abs() < 35.0, "{}", r.mbps);
        let r = p2p_bandwidth(P2pDir::ReadFromGpu, false);
        assert!((r.mbps - 247.0).abs() < 5.0, "{}", r.mbps);
        let r = p2p_bandwidth(P2pDir::WriteToGpu, true);
        assert!((r.pct_of_fdr - 100.0).abs() < 2.0, "{}", r.pct_of_fdr);
        let r = p2p_bandwidth(P2pDir::WriteToGpu, false);
        assert!((r.mbps - 1179.0).abs() < 15.0, "{}", r.mbps);
    }

    #[test]
    fn table2_shape_holds() {
        let t = table2();
        // GPU-GPU baseline put is the outlier, GDR brings it near H-H
        assert!(t.shmem_put_dd_baseline > 4.0 * t.shmem_put_dd_gdr);
        assert!(t.ib_sendrecv_hh < t.ib_sendrecv_dd);
        assert!(t.shmem_put_hh < t.shmem_put_dd_baseline);
    }
}
