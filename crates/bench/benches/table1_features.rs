//! Table I: features, designs and configuration support of the three
//! OpenSHMEM solutions (qualitative comparison, probed from the code).

fn main() {
    bench_gdr::banner(
        "Table I",
        "features / designs / configuration support per solution",
    );
    let rows = bench_gdr::tables::table1_rows();
    let names = ["Naive", "Host-based Pipeline [15]", "Proposed (Enhanced-GDR)"];
    println!(
        "{:<26} {:<18} {:<18} {:<28} {:<26}",
        "Design", "Intranode", "Internode", "Schemes", "True one-sided"
    );
    for (name, r) in names.iter().zip(rows) {
        println!("{:<26} {:<18} {:<18} {:<28} {:<26}", name, r[0], r[1], r[2], r[3]);
    }
}
