//! Ablation: GPU/HCA socket placement (§II-B). Inter-socket placement
//! cripples P2P; the runtime works around it with the proxy.

use omb::{latency, Config};
use pcie_sim::{ClusterSpec, PlacementPolicy};
use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine};

fn put_lat(placement: PlacementPolicy, bytes: u64) -> f64 {
    let spec = ClusterSpec::internode_pair().with_placement(placement);
    let m = ShmemMachine::build(spec, RuntimeConfig::tuned(Design::EnhancedGdr));
    let out = m.run(move |pe| {
        let dest = pe.shmalloc(bytes + 4096, Domain::Gpu);
        let src = pe.malloc_dev(bytes + 4096);
        pe.barrier_all();
        if pe.my_pe() == 0 {
            for _ in 0..3 {
                pe.putmem(dest, src, bytes, 1);
                pe.quiet();
            }
            let t0 = pe.now();
            for _ in 0..10 {
                pe.putmem(dest, src, bytes, 1);
                pe.quiet();
            }
            let dt = (pe.now() - t0).as_us_f64() / 10.0;
            pe.barrier_all();
            dt
        } else {
            pe.barrier_all();
            0.0
        }
    });
    out[0]
}

fn main() {
    bench_gdr::banner(
        "Ablation: GPU/HCA placement",
        "inter-node D-D put latency, intra- vs inter-socket (usec)",
    );
    println!(
        "{:>10} {:>16} {:>16}",
        "bytes", "intra-socket", "inter-socket"
    );
    for bytes in [8u64, 2048, 64 << 10, 1 << 20, 4 << 20] {
        let a = put_lat(PlacementPolicy::Affinity, bytes);
        let b = put_lat(PlacementPolicy::CrossSocket, bytes);
        println!("{bytes:>10} {a:>16.2} {b:>16.2}");
    }
    let _ = latency::put_latency as *const () as usize; // keep omb linked for parity
    let _ = Config::DD;
}
