//! Fig. 10: one-sidedness — origin comm time vs target compute time,
//! 8 KB (medium) and 1 MB (large) inter-node D-D puts.

#![allow(clippy::needless_range_loop)] // parallel-series tables

fn main() {
    let compute: Vec<u64> = vec![0, 50, 100, 200, 400, 800];
    for (panel, bytes) in [("(a) 8KB", 8u64 << 10), ("(b) 1MB", 1 << 20)] {
        bench_gdr::banner(
            &format!("Fig 10 {panel}"),
            "origin put+quiet time vs target compute (usec)",
        );
        let series = bench_gdr::figures::overlap_panel(bytes, &compute);
        println!("{:>16} {:>18} {:>18}", "target busy(us)", "Host-Pipeline", "Enhanced-GDR");
        for i in 0..compute.len() {
            println!(
                "{:>16} {:>18.1} {:>18.1}",
                compute[i], series[0].1[i].1, series[1].1[i].1
            );
        }
    }
}
