//! Extra (beyond the paper): put bandwidth and small-message rate per
//! configuration — the OMB bw/mr companions to the latency figures.

use omb::{put_bandwidth, message_rate, Config};
use shmem_gdr::{Design, RuntimeConfig};

fn main() {
    let cfg = RuntimeConfig::tuned(Design::EnhancedGdr);
    bench_gdr::banner(
        "Extra: inter-node put bandwidth",
        "window of 16 nbi puts per quiet (MB/s)",
    );
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "bytes", "D-D base", "D-D gdr", "H-D gdr"
    );
    for bytes in [4096u64, 64 << 10, 512 << 10, 2 << 20] {
        let base = put_bandwidth(Design::HostPipeline, cfg, false, Config::DD, bytes, 16).mbps;
        let dd = put_bandwidth(Design::EnhancedGdr, cfg, false, Config::DD, bytes, 16).mbps;
        let hd = put_bandwidth(Design::EnhancedGdr, cfg, false, Config::HD, bytes, 16).mbps;
        println!("{bytes:>10} {base:>14.0} {dd:>14.0} {hd:>14.0}");
    }

    bench_gdr::banner(
        "Extra: 8B message rate",
        "million one-sided puts per second, window 64",
    );
    for (label, intra) in [("inter-node", false), ("intra-node", true)] {
        let gdr = message_rate(Design::EnhancedGdr, cfg, intra);
        let base = message_rate(Design::HostPipeline, cfg, intra);
        println!("{label:<12} Enhanced-GDR {gdr:>7.2} Mops   Host-Pipeline {base:>7.2} Mops");
    }
}
