//! Extra (beyond the paper): atomic-operation latencies on host and GPU
//! symmetric memory (§III-D machinery) and barrier scaling.

use omb::{barrier_latency, cswap_latency, fetch_add_latency};
use shmem_gdr::Design;

fn main() {
    bench_gdr::banner(
        "Extra: atomic latency",
        "fetch-add / compare-swap on symmetric memory (usec)",
    );
    println!(
        "{:<24} {:>12} {:>12}",
        "operation", "host-domain", "gpu-domain"
    );
    for (label, intra) in [("intra-node", true), ("inter-node", false)] {
        let fh = fetch_add_latency(Design::EnhancedGdr, intra, false);
        let fg = fetch_add_latency(Design::EnhancedGdr, intra, true);
        println!("{:<24} {fh:>12.2} {fg:>12.2}", format!("fetch-add {label}"));
        let ch = cswap_latency(Design::EnhancedGdr, intra, false);
        let cg = cswap_latency(Design::EnhancedGdr, intra, true);
        println!("{:<24} {ch:>12.2} {cg:>12.2}", format!("cswap {label}"));
    }

    bench_gdr::banner("Extra: barrier_all scaling", "dissemination barrier (usec)");
    println!("{:>8} {:>14}", "PEs", "latency(us)");
    for (nodes, ppn) in [(2usize, 1usize), (2, 2), (4, 2), (8, 2), (16, 2), (32, 2)] {
        let us = barrier_latency(nodes, ppn);
        println!("{:>8} {us:>14.2}", nodes * ppn);
    }
}
