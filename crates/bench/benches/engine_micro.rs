//! Micro-benchmarks of the simulator itself: event throughput,
//! put-call overhead, machine construction.
//!
//! Plain wall-clock harness (no external benchmarking crate — the
//! build environment resolves crates offline). Run with
//! `cargo bench -p bench-gdr --bench engine_micro`; set
//! `GDR_BENCH_ITERS=n` to change the sample count. This is also the
//! regression vehicle for the observability hot path: compare runs
//! with `GDR_SHMEM_OBS=off` vs `=spans`.

use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine};
use sim_core::{Sim, SimDuration};
use std::time::Instant;

fn iters() -> u32 {
    std::env::var("GDR_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Run `f` once to warm up, then `n` timed samples; report best and
/// mean (best-of filters scheduler noise, like criterion's lower bound).
fn bench<T>(name: &str, n: u32, mut f: impl FnMut() -> T) {
    f();
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..n {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        best = best.min(dt);
        total += dt;
    }
    println!("{name:<28} best {best:9.3} ms   mean {:9.3} ms   ({n} samples)", total / n as f64);
}

fn engine_event_throughput(n: u32) {
    bench("engine_100k_events", n, || {
        let sim = Sim::new();
        sim.with_sched(|s| {
            for i in 0..100_000u64 {
                s.schedule_in(SimDuration::from_ns(i), Box::new(|_| {}));
            }
        });
        sim.drain();
        sim.stats().events_executed
    });
}

fn shmem_put_roundtrips(n: u32) {
    bench("shmem_1k_puts_quiet", n, || {
        let m = ShmemMachine::build(
            ClusterSpec::internode_pair(),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        );
        m.run(|pe| {
            let dest = pe.shmalloc(4096, Domain::Gpu);
            if pe.my_pe() == 0 {
                let src = pe.malloc_dev(4096);
                for _ in 0..1000 {
                    pe.putmem(dest, src, 8, 1);
                }
                pe.quiet();
            }
            pe.barrier_all();
        });
    });
}

fn machine_construction(n: u32) {
    bench("build_16_node_machine", n, || {
        ShmemMachine::build(
            ClusterSpec::wilkes(16, 2),
            RuntimeConfig::tuned(Design::EnhancedGdr),
        )
    });
}

fn main() {
    let n = iters();
    engine_event_throughput(n);
    shmem_put_roundtrips(n);
    machine_construction(n);
}
