//! Criterion micro-benchmarks of the simulator itself: event
//! throughput, put-call overhead, machine construction.

use criterion::{criterion_group, criterion_main, Criterion};
use pcie_sim::ClusterSpec;
use shmem_gdr::{Design, Domain, RuntimeConfig, ShmemMachine};
use sim_core::{Sim, SimDuration};

fn engine_event_throughput(c: &mut Criterion) {
    c.bench_function("engine_100k_events", |b| {
        b.iter(|| {
            let sim = Sim::new();
            sim.with_sched(|s| {
                for i in 0..100_000u64 {
                    s.schedule_in(SimDuration::from_ns(i), Box::new(|_| {}));
                }
            });
            sim.drain();
            sim.stats().events_executed
        })
    });
}

fn shmem_put_roundtrips(c: &mut Criterion) {
    c.bench_function("shmem_1k_puts_quiet", |b| {
        b.iter(|| {
            let m = ShmemMachine::build(
                ClusterSpec::internode_pair(),
                RuntimeConfig::tuned(Design::EnhancedGdr),
            );
            m.run(|pe| {
                let dest = pe.shmalloc(4096, Domain::Gpu);
                if pe.my_pe() == 0 {
                    let src = pe.malloc_dev(4096);
                    for _ in 0..1000 {
                        pe.putmem(dest, src, 8, 1);
                    }
                    pe.quiet();
                }
                pe.barrier_all();
            });
        })
    });
}

fn machine_construction(c: &mut Criterion) {
    c.bench_function("build_16_node_machine", |b| {
        b.iter(|| {
            ShmemMachine::build(
                ClusterSpec::wilkes(16, 2),
                RuntimeConfig::tuned(Design::EnhancedGdr),
            )
        })
    });
}

criterion_group!(benches, engine_event_throughput, shmem_put_roundtrips, machine_construction);
criterion_main!(benches);
