//! Table III: PCIe peer-to-peer bandwidth on the IvyBridge node model
//! and percentage of the FDR IB adapter's 6397 MB/s.

use pcie_sim::profile::P2pDir;

fn main() {
    bench_gdr::banner(
        "Table III",
        "P2P performance (IvyBridge) and % of FDR bandwidth",
    );
    println!("{:<12} {:>22} {:>22}", "", "Intra-Socket", "Inter-Socket");
    for (label, dir) in [("P2P Read", P2pDir::ReadFromGpu), ("P2P Write", P2pDir::WriteToGpu)] {
        let a = bench_gdr::tables::p2p_bandwidth(dir, true);
        let b = bench_gdr::tables::p2p_bandwidth(dir, false);
        println!(
            "{:<12} {:>12.0} MB/s ({:>3.0}%) {:>12.0} MB/s ({:>3.0}%)",
            label, a.mbps, a.pct_of_fdr, b.mbps, b.pct_of_fdr
        );
    }
}
