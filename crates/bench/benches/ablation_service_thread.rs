//! Ablation: the reference implementation's service thread vs the
//! paper's choices. The paper (§III, Fig 10 note) rejects the service
//! thread — it restores overlap for the host pipeline but consumes half
//! the CPU cores and adds lock overheads. This harness shows the
//! overlap effect; the CPU-resource cost is architectural (noted, not
//! simulated).

use omb::overlap::overlap_put;
use shmem_gdr::{Design, RuntimeConfig};

fn main() {
    bench_gdr::banner(
        "Ablation: service thread",
        "8KB inter-node D-D put+quiet time vs target compute (usec)",
    );
    let compute = [0u64, 100, 400, 800];
    let base = RuntimeConfig::tuned(Design::HostPipeline);
    let mut with_st = base;
    with_st.service_thread = true;
    let gdr = RuntimeConfig::tuned(Design::EnhancedGdr);
    println!(
        "{:>16} {:>16} {:>18} {:>16}",
        "target busy(us)", "baseline", "baseline+svcthr", "Enhanced-GDR"
    );
    for &c in &compute {
        let a = overlap_put(Design::HostPipeline, base, 8 << 10, c).comm_time_us;
        let b = overlap_put(Design::HostPipeline, with_st, 8 << 10, c).comm_time_us;
        let g = overlap_put(Design::EnhancedGdr, gdr, 8 << 10, c).comm_time_us;
        println!("{c:>16} {a:>16.1} {b:>18.1} {g:>16.1}");
    }
    println!("\nThe service thread restores flat communication time for the");
    println!("baseline, but on real hardware it pins a core per process and");
    println!("halves the compute capacity (why the paper builds the proxy).");
}
