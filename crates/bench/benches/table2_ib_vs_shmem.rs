//! Table II: 4-byte put latency at the IB verbs level vs the OpenSHMEM
//! level, for inter-node Host-Host and GPU-GPU movement.

fn main() {
    bench_gdr::banner(
        "Table II",
        "4B latencies at IB and OpenSHMEM levels, inter-node (usec)",
    );
    let t = bench_gdr::tables::table2();
    println!("{:<34} {:>12} {:>12}", "level", "Host-Host", "GPU-GPU");
    println!(
        "{:<34} {:>12.2} {:>12.2}",
        "IB send/recv (verbs)", t.ib_sendrecv_hh, t.ib_sendrecv_dd
    );
    println!(
        "{:<34} {:>12.2} {:>12.2}",
        "OpenSHMEM put (host pipeline [15])", t.shmem_put_hh, t.shmem_put_dd_baseline
    );
    println!(
        "{:<34} {:>12} {:>12.2}",
        "OpenSHMEM put (Enhanced-GDR)", "-", t.shmem_put_dd_gdr
    );
    println!(
        "\nGPU-GPU inefficiency of the current runtime: {:.1}x over IB level;",
        t.shmem_put_dd_baseline / t.ib_sendrecv_dd
    );
    println!(
        "GDR recovers it to {:.1}x.",
        t.shmem_put_dd_gdr / t.ib_sendrecv_dd
    );
}
