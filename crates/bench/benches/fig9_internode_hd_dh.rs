//! Fig. 9: inter-node D-H and H-D put/get latency — the baseline does
//! not support these configurations, so only the proposed design runs.
use bench_gdr::figures::{latency_panel, Op};
use omb::{small_sizes, large_sizes, Config};
use shmem_gdr::Design;

fn panel(op: Op, config: Config, op_name: &str) {
    for (span, sizes) in [("small", small_sizes()), ("large", large_sizes())] {
        bench_gdr::banner(
            &format!("Fig 9 {op_name} - {span} messages"),
            "inter-node inter-domain latency, proposed design only (usec)",
        );
        let designs = [Design::EnhancedGdr];
        let series = latency_panel(op, false, config, &designs, &sizes);
        if series.len() == 2 {
            let base: Vec<f64> = series[0].points.iter().map(|p| p.1).collect();
            let new: Vec<f64> = series[1].points.iter().map(|p| p.1).collect();
            bench_gdr::print_comparison(&sizes, "Host-Pipeline", &base, "Enhanced-GDR", &new);
        } else {
            let pts: Vec<(u64, f64)> = series[0].points.clone();
            bench_gdr::print_series(series[0].design.name(), &pts);
        }
    }
}

fn main() {
    panel(Op::Put, Config::DH, "Put D-H");
    panel(Op::Put, Config::HD, "Put H-D");
    panel(Op::Get, Config::HD, "Get H-D");
    panel(Op::Get, Config::DH, "Get D-H");
}
