//! Fig. 12: LBM Evolution-phase time, CUDA-aware MPI (original) vs the
//! OpenSHMEM-GDR redesign.
//!
//! (a) strong scaling, 128^3 global grid; (b) weak scaling, 64^3 per
//! GPU. Paper runs many timesteps; set LBM_STEPS to override.

#![allow(clippy::needless_range_loop)] // parallel-series tables

fn main() {
    let steps = std::env::var("LBM_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| bench_gdr::app_iters(50));
    let nodes = [8usize, 16, 32, 64];

    bench_gdr::banner(
        "Fig 12(a): LBM strong scaling 128x128x128",
        &format!("Evolution time for {steps} steps (seconds)"),
    );
    print_panel(&nodes, bench_gdr::figures::lbm_scaling(128, steps, &nodes, false));

    bench_gdr::banner(
        "Fig 12(b): LBM weak scaling 64x64x64 per GPU",
        &format!("Evolution time for {steps} steps (seconds)"),
    );
    print_panel(&nodes, bench_gdr::figures::lbm_scaling(64, steps, &nodes, true));
}

fn print_panel(nodes: &[usize], out: Vec<(apps_sim::LbmVariant, Vec<(usize, f64)>)>) {
    println!(
        "{:>6} {:>18} {:>18} {:>13}",
        "GPUs", "CUDA-aware MPI(s)", "OpenSHMEM-GDR(s)", "improvement"
    );
    for i in 0..nodes.len() {
        let mpi = out[0].1[i].1;
        let shm = out[1].1[i].1;
        println!(
            "{:>6} {:>18.4} {:>18.4} {:>12.1}%",
            nodes[i],
            mpi,
            shm,
            100.0 * (1.0 - shm / mpi)
        );
    }
}
