//! Ablation: the proxy protocol for large inter-node gets from GPU
//! memory (§III-C) vs chunked direct GDR reads that pay the P2P read cap.

use omb::{latency, Config};
use shmem_gdr::{Design, RuntimeConfig};

fn main() {
    bench_gdr::banner(
        "Ablation: proxy for large gets",
        "inter-node D-D get latency, proxy on vs off (usec)",
    );
    let sizes = [64u64 << 10, 256 << 10, 1 << 20, 4 << 20];
    println!(
        "{:>10} {:>14} {:>16} {:>9}",
        "bytes", "proxy(us)", "direct-read(us)", "gain"
    );
    for &b in &sizes {
        let mut on = RuntimeConfig::tuned(Design::EnhancedGdr);
        on.proxy_get_min = 0; // force the proxy to expose the crossover
        let mut off = on;
        off.proxy_enabled = false;
        let p_on = latency::get_latency(Design::EnhancedGdr, on, false, Config::DD, b).usec;
        let p_off = latency::get_latency(Design::EnhancedGdr, off, false, Config::DD, b).usec;
        println!("{b:>10} {:>14.1} {:>16.1} {:>8.2}x", p_on, p_off, p_off / p_on);
    }
}
