//! Fig. 11: Stencil2D (SHOC) execution time across GPU counts, for
//! 1K x 1K and 2K x 2K inputs, Host-Pipeline vs Enhanced-GDR.
//!
//! The paper reports 1000 internal iterations; set BENCH_FAST=1 for a
//! quick pass or STENCIL_ITERS to override.

#![allow(clippy::needless_range_loop)] // parallel-series tables

use shmem_gdr::Design;

fn main() {
    let iters = std::env::var("STENCIL_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| bench_gdr::app_iters(100));
    let nodes = [4usize, 8, 16, 32, 64];
    for n in [1024usize, 2048] {
        bench_gdr::banner(
            &format!("Fig 11: Stencil2D {0}x{0}", n),
            &format!("execution time for {iters} iterations (seconds)"),
        );
        let out = bench_gdr::figures::stencil_scaling(
            n,
            iters,
            &nodes,
            &[Design::HostPipeline, Design::EnhancedGdr],
        );
        println!(
            "{:>6} {:>16} {:>16} {:>13}",
            "GPUs", "Host-Pipeline(s)", "Enhanced-GDR(s)", "improvement"
        );
        for i in 0..nodes.len() {
            let b = out[0].1[i].1;
            let e = out[1].1[i].1;
            println!(
                "{:>6} {:>16.4} {:>16.4} {:>12.1}%",
                nodes[i],
                b,
                e,
                100.0 * (1.0 - e / b)
            );
        }
    }
}
