//! Ablation: the hybrid-protocol thresholds of §III. Sweeps the
//! loopback / direct-GDR switch points and shows the crossover the
//! tuned defaults sit on.

use omb::{latency, Config};
use shmem_gdr::{Design, RuntimeConfig};

fn main() {
    bench_gdr::banner(
        "Ablation: GDR thresholds",
        "intra-node D-D put latency vs loopback_put_limit (usec)",
    );
    let sizes = [512u64, 2 << 10, 8 << 10, 64 << 10, 256 << 10];
    let limits = [0u64, 2 << 10, 1 << 30];
    println!(
        "{:>10} {:>14} {:>16} {:>14}",
        "bytes", "ipc-only(us)", "tuned-2K(us)", "gdr-only(us)"
    );
    for &b in &sizes {
        let mut row = Vec::new();
        for &lim in &limits {
            let mut rc = RuntimeConfig::tuned(Design::EnhancedGdr);
            rc.loopback_put_limit = lim;
            rc.loopback_dd_limit = lim;
            row.push(latency::put_latency(Design::EnhancedGdr, rc, true, Config::DD, b).usec);
        }
        println!("{b:>10} {:>14.2} {:>16.2} {:>14.2}", row[0], row[1], row[2]);
    }

    bench_gdr::banner(
        "Ablation: pipeline chunk size",
        "inter-node D-D 4MiB put latency vs chunk (usec)",
    );
    println!("{:>12} {:>14}", "chunk(KiB)", "latency(us)");
    for chunk_kib in [64u64, 128, 256, 512, 1024, 2048] {
        let mut rc = RuntimeConfig::tuned(Design::EnhancedGdr);
        rc.pipeline_chunk = chunk_kib << 10;
        let p = latency::put_latency(Design::EnhancedGdr, rc, false, Config::DD, 4 << 20);
        println!("{chunk_kib:>12} {:>14.1}", p.usec);
    }
}
