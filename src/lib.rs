//! Umbrella crate re-exporting the whole workspace.
pub use apps_sim as apps;
pub use chaos;
pub use faults;
pub use gpu_sim as gpu;
pub use ib_sim as ib;
pub use obs;
pub use obs_analyze;
pub use omb;
pub use pcie_sim as pcie;
pub use shmem_gdr as shmem;
pub use sim_core as sim;
